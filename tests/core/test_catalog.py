"""Unit tests for the Sinew catalog (dictionary + per-table metadata)."""

import pytest

from repro.core.catalog import SinewCatalog
from repro.rdbms.database import Database
from repro.rdbms.errors import CatalogError, ConcurrencyError
from repro.rdbms.types import SqlType


@pytest.fixture()
def catalog():
    return SinewCatalog()


class TestAttributeDictionary:
    def test_get_or_create_is_idempotent(self, catalog):
        first = catalog.attribute_id("url", SqlType.TEXT)
        second = catalog.attribute_id("url", SqlType.TEXT)
        assert first == second
        assert len(catalog) == 1

    def test_multi_typed_keys_get_distinct_attributes(self, catalog):
        # "the combination of which we call an attribute" (section 3.2.1)
        text_id = catalog.attribute_id("dyn1", SqlType.TEXT)
        int_id = catalog.attribute_id("dyn1", SqlType.INTEGER)
        assert text_id != int_id
        assert {a.attr_id for a in catalog.attributes_named("dyn1")} == {
            text_id,
            int_id,
        }

    def test_lookup_without_create(self, catalog):
        assert catalog.lookup_id("ghost", SqlType.TEXT) is None
        catalog.attribute_id("real", SqlType.TEXT)
        assert catalog.lookup_id("real", SqlType.TEXT) is not None
        assert len(catalog) == 1

    def test_attribute_metadata(self, catalog):
        attr_id = catalog.attribute_id("hits", SqlType.INTEGER)
        attribute = catalog.attribute(attr_id)
        assert (attribute.key_name, attribute.key_type) == ("hits", SqlType.INTEGER)
        assert catalog.type_of(attr_id) is SqlType.INTEGER

    def test_unknown_id_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.attribute(999)

    def test_ids_are_dense_and_increasing(self, catalog):
        ids = [catalog.attribute_id(f"k{i}", SqlType.TEXT) for i in range(5)]
        assert ids == [1, 2, 3, 4, 5]


class TestTableCatalog:
    def test_occurrence_counting_and_density(self, catalog):
        attr_id = catalog.attribute_id("url", SqlType.TEXT)
        catalog.record_occurrence("t", attr_id)
        catalog.record_occurrence("t", attr_id)
        table = catalog.table("t")
        table.n_documents = 4
        assert table.state(attr_id).count == 2
        assert table.state(attr_id).density(4) == 0.5

    def test_dirty_and_materialized_lists(self, catalog):
        a = catalog.attribute_id("a", SqlType.TEXT)
        b = catalog.attribute_id("b", SqlType.TEXT)
        table = catalog.table("t")
        table.state(a).materialized = True
        table.state(b).dirty = True
        assert [s.attr_id for s in table.materialized_columns()] == [a]
        assert [s.attr_id for s in table.dirty_columns()] == [b]

    def test_logical_columns_storage_labels(self, catalog):
        a = catalog.attribute_id("a", SqlType.TEXT)
        b = catalog.attribute_id("b", SqlType.INTEGER)
        c = catalog.attribute_id("c", SqlType.REAL)
        table = catalog.table("t")
        table.state(a).materialized = True
        state_b = table.state(b)
        state_b.materialized = True
        state_b.dirty = True
        table.state(c)
        view = {name: storage for name, _t, storage in catalog.logical_columns("t")}
        assert view == {"a": "physical", "b": "dirty", "c": "virtual"}


class TestLatch:
    def test_exclusion_non_blocking(self, catalog):
        with catalog.exclusive_latch("loader"):
            with pytest.raises(ConcurrencyError):
                with catalog.exclusive_latch("materializer", blocking=False):
                    pass
        # released afterwards
        with catalog.exclusive_latch("materializer"):
            pass

    def test_blocking_acquisition_times_out_with_clear_error(self, catalog):
        with catalog.exclusive_latch("loader"):
            with pytest.raises(ConcurrencyError, match="timed out.*loader"):
                with catalog.exclusive_latch(
                    "materializer", blocking=True, timeout=0.05
                ):
                    pass
        assert catalog.latch_stats.timeouts == 1
        assert catalog.latch_stats.waits == 1

    def test_blocking_acquisition_waits_for_release(self, catalog):
        import threading

        release = threading.Event()
        entered = threading.Event()

        def holder():
            with catalog.exclusive_latch("materializer"):
                entered.set()
                release.wait(5.0)

        thread = threading.Thread(target=holder)
        thread.start()
        assert entered.wait(5.0)
        release.set()  # holder releases while we are blocked below
        with catalog.exclusive_latch("loader", blocking=True, timeout=5.0):
            pass
        thread.join(5.0)
        assert catalog.latch_stats.timeouts == 0
        assert catalog.latch_owner is None


class TestRdbmsReflection:
    def test_sync_to_rdbms(self, catalog):
        db = Database("reflect")
        a = catalog.attribute_id("url", SqlType.TEXT)
        catalog.record_occurrence("web", a, count=3)
        catalog.table("web").state(a).materialized = True
        catalog.sync_to_rdbms(db)

        attributes = db.execute("SELECT _id, key_name, key_type FROM _sinew_attributes")
        assert attributes.rows == [(a, "url", "text")]
        per_table = db.execute(
            "SELECT _id, count, materialized, dirty FROM _sinew_catalog_web"
        )
        assert per_table.rows == [(a, 3, True, False)]

        # re-sync refreshes rather than duplicating
        catalog.sync_to_rdbms(db)
        assert len(db.execute("SELECT _id FROM _sinew_attributes")) == 1
