"""SinewDB durability lifecycle: open/close, reopen replay, resumed
materialization, and the WAL status surfaces (status() and the shell)."""

import io
import json

import pytest

from repro.core import SinewDB
from repro.rdbms.types import SqlType
from repro.shell import SinewShell
from repro.testing.faults import FaultInjector, InjectedFault

DOCS = [
    {"a": i, "b": f"s{i}", "nested": {"x": i * 2}}
    for i in range(10)
]


def canonical(sdb, table="t"):
    return sorted(
        json.dumps({"_id": doc_id, **doc}, sort_keys=True)
        for doc_id, doc in sdb.documents(table)
    )


def build(path):
    sdb = SinewDB.open(path)
    sdb.create_collection("t")
    sdb.load("t", DOCS)
    return sdb


class TestLifecycle:
    def test_clean_close_reopen_byte_identical(self, tmp_path):
        sdb = build(tmp_path / "db")
        expected = canonical(sdb)
        sdb.close()

        sdb2 = SinewDB.open(tmp_path / "db")
        assert canonical(sdb2) == expected
        # clean close checkpointed: nothing replayed
        assert sdb2.last_recovery["records_replayed"] == 0
        assert sdb2.last_recovery["had_checkpoint"]
        assert all(report.ok for report in sdb2.check())
        sdb2.close()

    def test_crash_reopen_replays_wal(self, tmp_path):
        sdb = build(tmp_path / "db")
        sdb.query("UPDATE t SET b = 'updated' WHERE a = 3")
        expected = canonical(sdb)
        sdb.db.wal.close()  # abandon without checkpoint: crash semantics

        sdb2 = SinewDB.open(tmp_path / "db")
        assert sdb2.last_recovery["records_replayed"] > 0
        assert canonical(sdb2) == expected
        assert all(report.ok for report in sdb2.check())
        # logical schema survives via the replayed catalog records
        keys = {key for key, _t, _s in sdb2.logical_schema("t")}
        assert {"a", "b", "nested.x"} <= keys
        sdb2.close()

    def test_collections_and_drops_survive(self, tmp_path):
        sdb = SinewDB.open(tmp_path / "db")
        sdb.create_collection("keep")
        sdb.create_collection("gone")
        sdb.load("keep", [{"k": 1}])
        sdb.drop_collection("gone")
        sdb.db.wal.close()

        sdb2 = SinewDB.open(tmp_path / "db")
        assert sdb2.collections() == ["keep"]
        sdb2.close()

    def test_text_index_rebuilt_on_reopen(self, tmp_path):
        from repro.core import SinewConfig

        config = SinewConfig(enable_text_index=True)
        sdb = SinewDB.open(tmp_path / "db", config=config)
        sdb.create_collection("t")
        sdb.load("t", [{"msg": "hello world"}, {"msg": "goodbye"}])
        sdb.close()

        sdb2 = SinewDB.open(tmp_path / "db", config=config)
        assert sdb2.text_index is not None
        assert sdb2.text_index.search_term(None, "hello")
        sdb2.close()


class TestMaterializationResume:
    def test_cursor_resumes_mid_column(self, tmp_path):
        sdb = build(tmp_path / "db")
        sdb.materialize("t", "a", SqlType.INTEGER)
        # move only part of the column, then crash
        sdb.materializer_step("t", max_rows=4)
        state = sdb.catalog.table("t").state(
            sdb.catalog.lookup_id("a", SqlType.INTEGER)
        )
        assert 0 < state.cursor < len(DOCS)
        crashed_cursor = state.cursor
        expected = canonical(sdb)
        sdb.db.wal.close()

        sdb2 = SinewDB.open(tmp_path / "db")
        state2 = sdb2.catalog.table("t").state(
            sdb2.catalog.lookup_id("a", SqlType.INTEGER)
        )
        assert state2.dirty
        assert state2.cursor == crashed_cursor
        report = sdb2.run_materializer("t")
        # only the remaining rows are re-examined
        assert report.rows_examined == len(DOCS) - crashed_cursor
        assert not sdb2.catalog.table("t").dirty_columns()
        assert canonical(sdb2) == expected
        assert all(r.ok for r in sdb2.check())
        sdb2.close()

    def test_settled_layout_matches_crash_free_run(self, tmp_path):
        def workload(sdb, crash_mid_settle):
            sdb.create_collection("t")
            sdb.load("t", DOCS)
            sdb.materialize("t", "a", SqlType.INTEGER)
            sdb.materialize("t", "b", SqlType.TEXT)
            if crash_mid_settle:
                sdb.materializer_step("t", max_rows=13)
                sdb.db.wal.close()
            else:
                sdb.run_materializer("t")
                sdb.close()

        control = SinewDB.open(tmp_path / "control")
        workload(control, crash_mid_settle=False)
        control = SinewDB.open(tmp_path / "control")
        settled = sorted(
            (k, t.value, s) for k, t, s in control.logical_schema("t")
        )
        control_docs = canonical(control)
        control.close()

        crashed = SinewDB.open(tmp_path / "crash")
        workload(crashed, crash_mid_settle=True)
        recovered = SinewDB.open(tmp_path / "crash")
        recovered.run_materializer("t")
        assert canonical(recovered) == control_docs
        assert (
            sorted((k, t.value, s) for k, t, s in recovered.logical_schema("t"))
            == settled
        )
        recovered.close()

    def test_daemon_resumes_after_reopen(self, tmp_path):
        sdb = build(tmp_path / "db")
        sdb.materialize("t", "a", SqlType.INTEGER)
        sdb.materializer_step("t", max_rows=3)
        sdb.db.wal.close()

        sdb2 = SinewDB.open(tmp_path / "db")
        assert sdb2.daemon.recoveries >= 1
        sdb2.start_daemon()
        try:
            deadline = 200
            while sdb2.catalog.table("t").dirty_columns() and deadline:
                import time

                time.sleep(0.01)
                deadline -= 1
            assert not sdb2.catalog.table("t").dirty_columns()
        finally:
            sdb2.close()
        assert not sdb2.daemon.is_alive()


class TestStatusSurfaces:
    def test_status_includes_wal_block(self, tmp_path):
        sdb = build(tmp_path / "db")
        status = sdb.status()
        assert status["wal"]["durable"] is True
        assert status["wal"]["records"] > 0
        assert status["wal"]["fsyncs"] >= 1
        sdb.checkpoint()
        status = sdb.status()
        assert status["wal"]["checkpoints"] == 1
        assert status["wal"]["last_checkpoint_lsn"] > 0
        sdb.close()

    def test_in_memory_status_stays_cheap(self):
        sdb = SinewDB("mem")
        status = sdb.status()
        assert status["wal"]["durable"] is False
        assert status["wal"]["segments"] == 0

    def test_shell_wal_command(self, tmp_path):
        sdb = build(tmp_path / "db")
        out = io.StringIO()
        shell = SinewShell(sdb=sdb, out=out)
        shell.run_line("\\wal")
        text = out.getvalue()
        assert "wal: durable" in text
        assert "segments:" in text
        shell.run_line("\\wal checkpoint")
        assert "checkpoint written at lsn" in out.getvalue()
        shell.run_line("\\wal bogus")
        assert "usage: \\wal [status|checkpoint]" in out.getvalue()
        sdb.close()

    def test_shell_wal_in_memory(self):
        out = io.StringIO()
        shell = SinewShell(sdb=SinewDB("mem"), out=out)
        shell.run_line("\\wal")
        assert "in-memory" in out.getvalue()


class TestFaultedCheckpoint:
    def test_checkpoint_pages_fault_preserves_old_checkpoint(self, tmp_path):
        sdb = build(tmp_path / "db")
        sdb.checkpoint()
        first_lsn = sdb.db.checkpointer.last_checkpoint_lsn
        sdb.load("t", [{"late": True}])
        injector = FaultInjector()
        sdb.attach_faults(injector)
        injector.plan("checkpoint.pages", "raise", at=1)
        with pytest.raises(InjectedFault):
            sdb.checkpoint()
        expected = canonical(sdb)
        sdb.db.wal.close()

        sdb2 = SinewDB.open(tmp_path / "db")
        assert sdb2.last_recovery["had_checkpoint"]
        assert sdb2.last_recovery["checkpoint_lsn"] == first_lsn
        assert canonical(sdb2) == expected
        sdb2.close()
