"""Registry hygiene: the SNW403 rule over the production tree.

``FaultInjector.fire`` rejects unknown names at runtime, but only on code
paths a test actually executes with an injector attached.  The engine
protocol analyzer closes the gap statically: rule SNW403 resolves every
``fire("...")`` literal under ``src/repro`` against the canonical
registry (``_KNOWN_POINTS`` plus ``register_point`` literals) and checks
both directions -- no unregistered call sites, no dead registrations.
These tests assert that pass runs clean on the tree and, against seeded
fixtures, that it actually catches both violation directions (a test
that only ever sees zero findings could be a pass that finds nothing).
"""

from pathlib import Path

from repro.analysis.protocol import analyze_paths, collect_fire_sites, format_finding

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"
BAD_FIXTURE = (
    Path(__file__).resolve().parents[1] / "analysis" / "fixtures" / "bad_snw403.py"
)


def snw403_findings(paths):
    return [d for d in analyze_paths(paths) if d.code == "SNW403"]


def test_engine_tree_has_no_registry_findings():
    findings = snw403_findings([SRC_REPRO])
    assert not findings, "\n".join(format_finding(d) for d in findings)


def test_the_pass_sees_the_call_sites():
    """The AST scan itself works (guards against the visitor rotting)."""
    sites = collect_fire_sites([SRC_REPRO])
    assert len(sites) >= 10
    points_seen = {point for _f, _l, point in sites}
    # every subsystem the registry documents actually fires something
    for prefix in ("loader.", "materializer.", "daemon.", "wal.", "checkpoint."):
        assert any(p.startswith(prefix) for p in points_seen), prefix


def test_seeded_unregistered_point_is_caught():
    findings = snw403_findings([BAD_FIXTURE])
    assert len(findings) == 1
    assert "fixture.registered_pont" in findings[0].message


def test_seeded_dead_registration_is_caught(tmp_path):
    module = tmp_path / "registry.py"
    module.write_text(
        '_KNOWN_POINTS = {\n'
        '    "island.fired_point",\n'
        '    "island.dead_point",\n'
        '}\n'
        '\n'
        'def f(faults):\n'
        '    faults.fire("island.fired_point")\n'
    )
    findings = snw403_findings([module])
    assert len(findings) == 1
    assert "island.dead_point" in findings[0].message
    assert findings[0].line == 3  # the registration line, not a call site
