"""Registry hygiene: every ``fire(...)`` call site in the production tree
must use a name from the canonical injection-point registry.

``FaultInjector.fire`` rejects unknown names at runtime, but only on code
paths a test actually executes with an injector attached.  This test
closes the gap statically: it greps every ``fire("...")`` literal under
``src/`` and asserts the name is registered, so a typo'd or unregistered
point fails CI even if no test ever reaches it.
"""

import re
from pathlib import Path

from repro.testing.faults import known_points

SRC = Path(__file__).resolve().parents[2] / "src"

#: matches ``.fire("point", ...)`` / ``_fire('point')`` call sites,
#: including ones where the name literal sits on the following line
_FIRE_CALL = re.compile(r"""\b_?fire\(\s*["']([A-Za-z0-9_.]+)["']""")


def fire_call_sites():
    """Every (file, line, point) triple of a fire() literal under src/."""
    sites = []
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for match in _FIRE_CALL.finditer(text):
            line_number = text.count("\n", 0, match.start()) + 1
            sites.append((path.relative_to(SRC), line_number, match.group(1)))
    return sites


def test_there_are_fire_call_sites():
    """The grep itself works (guards against the pattern rotting)."""
    sites = fire_call_sites()
    assert len(sites) >= 10
    points_seen = {point for _f, _l, point in sites}
    # every subsystem the registry documents actually fires something
    for prefix in ("loader.", "materializer.", "daemon.", "wal.", "checkpoint."):
        assert any(p.startswith(prefix) for p in points_seen), prefix


def test_every_fire_site_uses_a_registered_point():
    registered = known_points()
    unregistered = [
        f"{file}:{line}: fire({point!r})"
        for file, line, point in fire_call_sites()
        if point not in registered
    ]
    assert not unregistered, (
        "fire() call sites using unregistered injection points "
        "(add them to repro.testing.faults._KNOWN_POINTS):\n"
        + "\n".join(unregistered)
    )


def test_every_registered_point_has_a_call_site():
    """The registry carries no dead entries: each known point is fired
    somewhere in the production tree."""
    fired = {point for _f, _l, point in fire_call_sites()}
    dead = sorted(known_points() - fired)
    assert not dead, f"registered injection points never fired in src/: {dead}"
