"""The per-query decode cache: correctness, counters, and EXPLAIN ANALYZE.

The cache must be *observationally invisible*: every query returns the
same rows with the cache on and off, across all three physical layouts
(fully virtual, fully settled, dirty mid-move) and while the background
materializer is actively replacing rows underneath the query (delay
faults stretch the move window so queries interleave with it).
"""

import time

import pytest

from repro.core import SinewConfig, SinewDB
from repro.core.extraction_context import ExtractionContext
from repro.core.loader import SinewLoader
from repro.core.catalog import SinewCatalog
from repro.core.extractors import ReservoirExtractor
from repro.rdbms.cost import ExtractionStats
from repro.rdbms.database import Database
from repro.rdbms.errors import PlanningError
from repro.rdbms.types import SqlType
from repro.testing.faults import FaultInjector


DOCS = [
    {
        "k": i,
        "name": f"n{i}",
        "score": None if i % 4 == 0 else i * 10,
        "flag": i % 2 == 0,
        "nested": {"inner": i + 100},
    }
    for i in range(24)
]
# a few rows miss "score" entirely (absent, not JSON null)
for doc in DOCS[::5]:
    doc.pop("score")

MULTIKEY = 'SELECT k, name, flag, "nested.inner" FROM t ORDER BY k'


def build(layout: str) -> SinewDB:
    sdb = SinewDB(f"cache_{layout}")
    sdb.create_collection("t")
    sdb.load("t", DOCS)
    if layout in ("settled", "dirty"):
        sdb.materialize("t", "k", SqlType.INTEGER)
        sdb.materialize("t", "name", SqlType.TEXT)
        if layout == "settled":
            sdb.run_materializer("t")
        else:
            sdb.materializer_step("t", max_rows=len(DOCS) // 2)
    sdb.analyze()
    return sdb


@pytest.fixture(params=["virtual", "settled", "dirty"])
def layout_sdb(request):
    return request.param, build(request.param)


# ----------------------------------------------------------------------
# unit: the context itself
# ----------------------------------------------------------------------


class TestContextUnit:
    def setup_method(self):
        db = Database("ctx")
        self.loader = SinewLoader(db, SinewCatalog())

    def serialize(self, doc):
        return self.loader.serialize_document(doc)

    def test_header_decoded_once_per_object(self):
        stats = ExtractionStats()
        context = ExtractionContext(stats)
        data = self.serialize({"a": 1, "b": 2})
        first = context.header(data)
        assert context.header(data) is first
        assert stats.header_decodes == 1
        assert stats.header_cache_hits == 1

    def test_equal_but_distinct_bytes_miss(self):
        # identity keying: equal content in a different object is a miss
        stats = ExtractionStats()
        context = ExtractionContext(stats)
        data = self.serialize({"a": 1})
        clone = bytes(bytearray(data))
        assert clone == data and clone is not data
        context.header(data)
        context.header(clone)
        assert stats.header_decodes == 2
        assert stats.header_cache_hits == 0

    def test_disabled_context_always_decodes(self):
        stats = ExtractionStats()
        context = ExtractionContext(stats, enabled=False)
        data = self.serialize({"a": 1})
        context.header(data)
        context.header(data)
        assert stats.header_decodes == 2
        assert stats.header_cache_hits == 0

    def test_fifo_eviction_bounds_memory(self):
        context = ExtractionContext(capacity=4)
        buffers = [self.serialize({"a": i}) for i in range(10)]
        for data in buffers:
            context.header(data)
        assert len(context._headers) == 4

    def test_subdocument_cached_by_identity(self):
        stats = ExtractionStats()
        context = ExtractionContext(stats)
        data = self.serialize({"parent": {"child": 7}})
        header = context.header(data)
        parent_id = self.loader.catalog.attribute_id("parent", SqlType.BYTEA)
        first = context.subdocument(header, parent_id)
        again = context.subdocument(header, parent_id)
        assert again is first  # same object -> nested header-cache hits
        assert stats.subdoc_decodes == 1
        assert stats.subdoc_cache_hits == 1


# ----------------------------------------------------------------------
# the dotted-key shadowing matrix (satellite S1)
# ----------------------------------------------------------------------


class TestDottedKeyShadowing:
    """Descent tries prefixes longest-first and keeps going on a miss."""

    CASES = {
        "nested_only": ({"a": {"b": {"c": 1}}}, 1),
        "literal_only": ({"a.b.c": 5}, 5),
        "shadow_in_shorter_prefix": ({"a": {"b": {"d": 0}, "b.c": 5}}, 5),
        "longest_prefix_wins": ({"a": {"b": {"c": 1}, "b.c": 5}}, 1),
        "top_level_literal_beats_nothing": ({"a": {"b": {}}, "a.b.c": 9}, 9),
    }

    @pytest.mark.parametrize("case", list(CASES))
    def test_matrix_via_extractor(self, case):
        document, expected = self.CASES[case]
        db = Database(f"shadow_{case}")
        catalog = SinewCatalog()
        loader = SinewLoader(db, catalog)
        extractor = ReservoirExtractor(catalog)
        data = loader.serialize_document(document)
        assert extractor.extract_int(data, "a.b.c") == expected
        assert extractor.exists(data, "a.b.c") is True

    @pytest.mark.parametrize("case", list(CASES))
    def test_matrix_via_sql(self, case):
        document, expected = self.CASES[case]
        sdb = SinewDB(f"shadow_sql_{case}")
        sdb.create_collection("t")
        sdb.load("t", [document])
        assert sdb.query('SELECT "a.b.c" FROM t').scalar() == expected

    def test_false_value_is_found_by_exists(self):
        # exists() must treat a stored False as present (found=bool, not
        # found=is-not-None confusion)
        db = Database("shadow_false")
        catalog = SinewCatalog()
        loader = SinewLoader(db, catalog)
        extractor = ReservoirExtractor(catalog)
        data = loader.serialize_document({"a": {"b.c": False}})
        assert extractor.exists(data, "a.b.c") is True
        assert extractor.extract_bool(data, "a.b.c") is False


# ----------------------------------------------------------------------
# ORDER BY DESC with NULLs over virtual and dirty columns (satellite S2)
# ----------------------------------------------------------------------


class TestDescNulls:
    def expected_scores(self):
        present = sorted(
            (doc["score"] for doc in DOCS if doc.get("score") is not None),
            reverse=True,
        )
        n_null = len(DOCS) - len(present)
        return [None] * n_null + present

    def test_desc_nulls_first_every_layout(self, layout_sdb):
        _layout, sdb = layout_sdb
        result = sdb.query("SELECT score FROM t ORDER BY score DESC")
        assert result.column(0) == self.expected_scores()

    def test_asc_nulls_last_every_layout(self, layout_sdb):
        _layout, sdb = layout_sdb
        result = sdb.query("SELECT score FROM t ORDER BY score")
        assert result.column(0) == list(reversed(self.expected_scores()))

    def test_desc_on_dirty_sort_key(self):
        # sort directly on a half-moved column: NULLs first, then values
        sdb = SinewDB("desc_dirty_key")
        sdb.create_collection("t")
        sdb.load("t", DOCS)
        sdb.materialize("t", "score", SqlType.INTEGER)
        sdb.materializer_step("t", max_rows=len(DOCS) // 2)
        result = sdb.query("SELECT score FROM t ORDER BY score DESC")
        assert result.column(0) == self.expected_scores()


# ----------------------------------------------------------------------
# cache correctness: cached == uncached on every layout (satellite S4)
# ----------------------------------------------------------------------


class TestCacheCorrectness:
    def test_cached_matches_uncached(self, layout_sdb):
        layout, sdb = layout_sdb
        cached = sdb.query(MULTIKEY)
        uncached = sdb.query(MULTIKEY, use_extraction_cache=False)
        assert cached.rows == uncached.rows
        assert uncached.exec_stats["header_cache_hits"] == 0
        if layout != "settled":
            # at least one virtual column -> the cache actually engaged
            assert cached.exec_stats["header_cache_hits"] > 0
            assert (
                cached.exec_stats["header_decodes"]
                < uncached.exec_stats["header_decodes"]
            )

    def test_total_header_accesses_are_layout_invariant(self, layout_sdb):
        _layout, sdb = layout_sdb
        cached = sdb.query(MULTIKEY)
        uncached = sdb.query(MULTIKEY, use_extraction_cache=False)
        assert (
            cached.exec_stats["header_decodes"]
            + cached.exec_stats["header_cache_hits"]
            == uncached.exec_stats["header_decodes"]
        )

    def test_config_default_can_disable_cache(self):
        sdb = SinewDB("cfg_off", SinewConfig(enable_extraction_cache=False))
        sdb.create_collection("t")
        sdb.load("t", DOCS)
        result = sdb.query("SELECT k, name FROM t")
        assert result.exec_stats["header_cache_hits"] == 0
        assert result.exec_stats["header_decodes"] > 0

    def test_queries_interleaved_with_materializer_moves(self):
        """Delay faults stretch every row move; repeated cached queries run
        *while* rows are being replaced and must stay correct throughout."""
        sdb = SinewDB(
            "interleave",
            SinewConfig(daemon_step_rows=3, daemon_idle_sleep=0.001),
        )
        sdb.create_collection("t")
        sdb.load("t", DOCS)
        truth = sdb.query(MULTIKEY, use_extraction_cache=False).rows

        injector = FaultInjector()
        injector.plan(
            "materializer.after_row_move",
            "delay",
            at=1,
            count=None,
            delay=0.002,
        )
        sdb.attach_faults(injector)
        sdb.materialize("t", "k", SqlType.INTEGER)
        sdb.materialize("t", "name", SqlType.TEXT)
        sdb.daemon.start()
        try:
            deadline = time.monotonic() + 10.0
            observed_moves = 0
            while time.monotonic() < deadline:
                assert sdb.query(MULTIKEY).rows == truth
                observed_moves = injector.hits.get(
                    "materializer.after_row_move", 0
                )
                if observed_moves >= 2 * len(DOCS):  # both columns moved
                    break
        finally:
            sdb.daemon.stop()
        assert observed_moves >= 2 * len(DOCS)
        # and after the dust settles the answer is still the same
        assert sdb.query(MULTIKEY).rows == truth
        assert sdb.query(MULTIKEY, use_extraction_cache=False).rows == truth


class TestMoveWindowPlans:
    """Plans must bridge the physical/reservoir split at every move stage."""

    def test_marked_column_bridges_before_first_move(self):
        # materialize() allocates the physical column eagerly, so a query
        # planned before any row moves already carries the COALESCE bridge
        # (previously the daemon allocated it lazily and a query planned in
        # the gap could lose a concurrently-moved value)
        sdb = SinewDB("premark")
        sdb.create_collection("t")
        sdb.load("t", DOCS)
        sdb.materialize("t", "name", SqlType.TEXT)
        state, = [
            s
            for s in sdb.catalog.table("t").columns.values()
            if sdb.catalog.attribute(s.attr_id).key_name == "name"
        ]
        assert state.physical_name
        assert state.physical_name in sdb.db.table("t").schema
        assert "COALESCE" in sdb.explain("SELECT name FROM t")

    def test_dematerializing_column_bridges_and_stays_correct(self):
        # mid-dematerialization, unmoved rows hold the value only in the
        # physical cell; the rewrite must consult both sides
        sdb = SinewDB("demat_bridge")
        sdb.create_collection("t")
        sdb.load("t", DOCS)
        sdb.materialize("t", "name", SqlType.TEXT)
        sdb.run_materializer("t")
        truth = sorted(sdb.query("SELECT k, name FROM t").rows)
        sdb.dematerialize("t", "name", SqlType.TEXT)
        sdb.materializer_step("t", max_rows=len(DOCS) // 2)
        assert "COALESCE" in sdb.explain("SELECT name FROM t")
        assert sorted(sdb.query("SELECT k, name FROM t").rows) == truth
        assert (
            sorted(sdb.query("SELECT k, name FROM t", use_extraction_cache=False).rows)
            == truth
        )
        # completing the move drops the bridge again
        sdb.run_materializer("t")
        assert "COALESCE" not in sdb.explain("SELECT name FROM t")
        assert sorted(sdb.query("SELECT k, name FROM t").rows) == truth


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE surface (tentpole)
# ----------------------------------------------------------------------


class TestExplainAnalyze:
    def test_plan_text_has_nodes_counters_and_time(self):
        sdb = build("dirty")
        result = sdb.query(MULTIKEY, explain_analyze=True)
        text = result.plan_text
        assert "actual rows=" in text
        assert "loops=" in text
        assert "header_decodes=" in text
        assert "Extraction keys per row:" in text  # multi-key query tagged
        assert "Execution time:" in text
        # analyzed queries still return their rows
        assert len(result.rows) == len(DOCS)

    def test_exec_stats_on_every_query(self):
        sdb = build("virtual")
        stats = sdb.query(MULTIKEY).exec_stats
        for key in (
            "udf_calls",
            "header_decodes",
            "header_cache_hits",
            "subdoc_decodes",
            "subdoc_cache_hits",
            "execution_seconds",
            "rows",
        ):
            assert key in stats
        assert stats["rows"] == len(DOCS)
        assert stats["udf_calls"] > 0

    def test_explain_analyze_helper_rejects_non_select(self):
        sdb = build("virtual")
        with pytest.raises(PlanningError):
            sdb.explain_analyze("DELETE FROM t")
