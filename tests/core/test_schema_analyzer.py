"""Unit tests for the schema analyzer's materialization policy."""

import pytest

from repro.core import SinewDB
from repro.core.schema_analyzer import MaterializationPolicy
from repro.core.sinew import SinewConfig
from repro.rdbms.types import SqlType


def sdb_with(documents, policy=None):
    config = SinewConfig()
    if policy is not None:
        config.policy = policy
    sdb = SinewDB("analyzer", config)
    sdb.create_collection("t")
    sdb.load("t", documents)
    return sdb


class TestPolicy:
    def test_thresholds_are_conjunctive(self):
        policy = MaterializationPolicy(density_threshold=0.6, cardinality_threshold=200)
        assert policy.should_materialize(0.9, 500)
        assert not policy.should_materialize(0.5, 500)  # sparse
        assert not policy.should_materialize(0.9, 100)  # low cardinality
        assert not policy.should_materialize(0.9, 200)  # strictly greater


class TestAnalyzerDecisions:
    def test_dense_high_cardinality_materialized(self):
        documents = [{"k": f"value{i}", "lowcard": i % 3} for i in range(500)]
        sdb = sdb_with(documents)
        report = sdb.analyze_schema("t")
        assert report.materialized_keys() == ["k"]

    def test_sparse_key_stays_virtual(self):
        documents = [
            {"dense": f"d{i}", "rare": f"r{i}"} if i % 10 == 0 else {"dense": f"d{i}"}
            for i in range(500)
        ]
        report = sdb_with(documents).analyze_schema("t")
        assert "rare" not in report.materialized_keys()

    def test_low_cardinality_dense_key_stays_virtual(self):
        documents = [{"flag": i % 2 == 0, "k": f"v{i}"} for i in range(500)]
        report = sdb_with(documents).analyze_schema("t")
        assert "flag" not in report.materialized_keys()

    def test_nested_keys_skipped_by_default(self):
        documents = [{"user": {"id": i}} for i in range(500)]
        report = sdb_with(documents).analyze_schema("t")
        assert "user.id" not in report.materialized_keys()
        # the parent object itself is a candidate
        assert "user" in report.materialized_keys()

    def test_nested_keys_candidates_when_enabled(self):
        documents = [{"user": {"id": i}} for i in range(500)]
        policy = MaterializationPolicy(include_nested=True)
        report = sdb_with(documents, policy).analyze_schema("t")
        assert "user.id" in report.materialized_keys()

    def test_dematerialization_when_density_drops(self):
        documents = [{"k": f"v{i}"} for i in range(400)]
        sdb = sdb_with(documents)
        sdb.settle("t")
        assert any(
            storage == "physical"
            for key, _t, storage in sdb.logical_schema("t")
            if key == "k"
        )
        # dilute the table with documents lacking 'k'
        sdb.load("t", [{"other": i} for i in range(800)])
        report = sdb.analyze_schema("t")
        assert "k" in report.dematerialized_keys()

    def test_analyzer_idempotent(self):
        documents = [{"k": f"v{i}"} for i in range(400)]
        sdb = sdb_with(documents)
        first = sdb.analyze_schema("t")
        assert first.decisions
        second = sdb.analyze_schema("t")
        assert not second.decisions

    def test_empty_table_no_decisions(self):
        sdb = SinewDB("empty")
        sdb.create_collection("t")
        assert sdb.analyze_schema("t").decisions == []

    def test_multi_typed_key_density_split(self):
        # each (key, type) attribute is evaluated separately: a 50/50 typed
        # key has per-attribute density 0.5 < 0.6 and stays virtual
        documents = [
            {"dyn": f"value{i}"} if i % 2 else {"dyn": i} for i in range(600)
        ]
        report = sdb_with(documents).analyze_schema("t")
        assert "dyn" not in report.materialized_keys()

    def test_custom_thresholds(self):
        documents = [{"k": f"v{i % 50}"} for i in range(300)]
        lax = MaterializationPolicy(density_threshold=0.5, cardinality_threshold=10)
        report = sdb_with(documents, lax).analyze_schema("t")
        assert "k" in report.materialized_keys()
