"""Unit tests for document parsing, flattening, and type inference."""

import pytest

from repro.core.document import (
    DocumentError,
    document_bytes,
    flatten,
    infer_sql_type,
    parse_document,
    resolve_path,
)
from repro.rdbms.types import SqlType


class TestParseDocument:
    def test_json_string(self):
        assert parse_document('{"a": 1}') == {"a": 1}

    def test_mapping_copied(self):
        original = {"a": 1}
        parsed = parse_document(original)
        parsed["b"] = 2
        assert "b" not in original

    def test_invalid_json(self):
        with pytest.raises(DocumentError, match="invalid JSON"):
            parse_document("{oops")

    def test_non_object_root(self):
        with pytest.raises(DocumentError, match="root"):
            parse_document("[1, 2]")

    def test_bad_key(self):
        with pytest.raises(DocumentError):
            parse_document({"": 1})

    def test_wrong_type(self):
        with pytest.raises(DocumentError):
            parse_document(42)


class TestInferSqlType:
    def test_mapping(self):
        assert infer_sql_type(True) is SqlType.BOOLEAN
        assert infer_sql_type(1) is SqlType.INTEGER
        assert infer_sql_type(1.5) is SqlType.REAL
        assert infer_sql_type("x") is SqlType.TEXT
        assert infer_sql_type({"a": 1}) is SqlType.BYTEA
        assert infer_sql_type([1]) is SqlType.ARRAY

    def test_null_rejected(self):
        with pytest.raises(DocumentError):
            infer_sql_type(None)


class TestFlatten:
    def test_flat_document(self):
        assert dict(flatten({"a": 1, "b": "x"})) == {"a": 1, "b": "x"}

    def test_nested_yields_parent_and_children(self):
        flattened = dict(flatten({"user": {"id": 7, "geo": {"lat": 1.0}}}))
        assert flattened["user"] == {"id": 7, "geo": {"lat": 1.0}}
        assert flattened["user.id"] == 7
        assert flattened["user.geo"] == {"lat": 1.0}
        assert flattened["user.geo.lat"] == 1.0

    def test_null_values_skipped(self):
        assert dict(flatten({"a": None, "b": 1})) == {"b": 1}

    def test_arrays_left_opaque(self):
        flattened = dict(flatten({"arr": [{"x": 1}]}))
        assert flattened == {"arr": [{"x": 1}]}


class TestResolvePath:
    def test_navigation(self):
        doc = {"user": {"geo": {"lat": 1.5}}}
        assert resolve_path(doc, "user.geo.lat") == 1.5
        assert resolve_path(doc, "user.geo") == {"lat": 1.5}

    def test_literal_dotted_key_wins(self):
        doc = {"a.b": 1, "a": {"b": 2}}
        assert resolve_path(doc, "a.b") == 1

    def test_missing(self):
        assert resolve_path({"a": 1}, "a.b") is None
        assert resolve_path({"a": 1}, "z") is None
        assert resolve_path({"a": "scalar"}, "a.b") is None


class TestDocumentBytes:
    def test_compact_json_size(self):
        assert document_bytes({"a": 1}) == len(b'{"a":1}')
