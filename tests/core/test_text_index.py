"""Unit tests for the inverted text index."""

import pytest

from repro.core.text_index import InvertedTextIndex, tokenize


@pytest.fixture()
def index():
    idx = InvertedTextIndex()
    idx.index_document(0, {"title": "Hello World", "body": "databases are fun"})
    idx.index_document(1, {"title": "world peace", "views": 100})
    idx.index_document(2, {"title": "goodbye", "nested": {"deep": "hello again"}})
    idx.index_document(3, {"tags": ["hello", "sql"], "views": 250})
    return idx


class TestTokenize:
    def test_lowercase_alphanumeric(self):
        assert tokenize("Hello, World! 42") == ["hello", "world", "42"]

    def test_base32_values_survive_as_single_tokens(self):
        # '=' is part of the token alphabet so NoBench's base32 values stay
        # searchable as exact terms
        assert tokenize("GBRDCMBQGA======") == ["gbrdcmbqga======"]


class TestTermSearch:
    def test_global_search(self, index):
        assert index.search_term(None, "hello") == {0, 2, 3}
        assert index.search_term("*", "world") == {0, 1}

    def test_field_faceted_search(self, index):
        assert index.search_term("title", "hello") == {0}
        assert index.search_term("body", "hello") == set()

    def test_nested_field_names_are_dotted(self, index):
        assert index.search_term("nested.deep", "hello") == {2}

    def test_array_elements_indexed(self, index):
        assert index.search_term("tags", "sql") == {3}

    def test_boolean_terms(self):
        idx = InvertedTextIndex()
        idx.index_document(0, {"flag": True})
        assert idx.search_term("flag", "true") == {0}

    def test_case_insensitive(self, index):
        assert index.search_term(None, "HELLO") == {0, 2, 3}


class TestPrefixFuzzyRange:
    def test_prefix(self, index):
        assert index.search_prefix(None, "wor") == {0, 1}
        assert index.search_prefix("title", "good") == {2}

    def test_fuzzy_one_edit(self, index):
        assert 0 in index.search_fuzzy(None, "helo")  # deletion
        assert 0 in index.search_fuzzy(None, "hellp")  # substitution
        assert index.search_fuzzy(None, "xyzzy") == set()

    def test_numeric_range(self, index):
        assert index.search_range("views", 50, 150) == {1}
        assert index.search_range("views", None, None) == {1, 3}
        assert index.search_range("views", 300, None) == set()


class TestMatchesLanguage:
    def test_conjunction(self, index):
        assert index.matches("*", "hello world") == {0}

    def test_field_list(self, index):
        assert index.matches("title,body", "hello") == {0}

    def test_prefix_term(self, index):
        assert index.matches("*", "wor*") == {0, 1}

    def test_fuzzy_term(self, index):
        assert 0 in index.matches("*", "helo~")

    def test_regex_term(self, index):
        assert index.matches("*", "/^good/") == {2}

    def test_empty_result_short_circuits(self, index):
        assert index.matches("*", "hello nonexistent") == set()


class TestMaintenance:
    def test_reindex_replaces(self, index):
        index.index_document(0, {"title": "totally different"})
        assert 0 not in index.search_term(None, "hello")
        assert 0 in index.search_term("title", "different")

    def test_remove_document(self, index):
        index.remove_document(1)
        assert index.search_term(None, "peace") == set()
        assert index.search_range("views", None, None) == {3}
        assert index.n_documents == 3

    def test_unstructured_text(self, index):
        index.index_text(9, "completely unstructured ramble")
        assert index.search_term("_text", "ramble") == {9}
        assert 9 in index.matches("*", "unstructured")
