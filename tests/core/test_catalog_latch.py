"""Contention behaviour of the loader/materializer catalog latch:
bounded-timeout expiry and LatchStats accuracy under real thread racing."""

import threading
import time

import pytest

from repro.core import SinewDB
from repro.core.catalog import SinewCatalog
from repro.rdbms.errors import ConcurrencyError
from repro.testing.faults import FaultInjector


class TestTimeoutExpiry:
    def test_blocking_acquisition_times_out(self):
        catalog = SinewCatalog()
        release = threading.Event()

        def holder():
            with catalog.exclusive_latch("loader"):
                release.wait(5.0)

        thread = threading.Thread(target=holder, daemon=True)
        thread.start()
        while catalog.latch_owner != "loader":
            time.sleep(0.001)

        started = time.monotonic()
        with pytest.raises(ConcurrencyError, match="timed out"):
            with catalog.exclusive_latch("materializer", timeout=0.05):
                pass
        elapsed = time.monotonic() - started
        assert 0.04 <= elapsed < 2.0  # bounded: gave up near the timeout
        assert catalog.latch_stats.timeouts == 1
        assert catalog.latch_stats.waits == 1
        assert catalog.latch_stats.acquisitions == 1  # only the holder's

        release.set()
        thread.join()
        # once released, the same acquisition succeeds and is counted
        with catalog.exclusive_latch("materializer", timeout=0.05):
            assert catalog.latch_owner == "materializer"
        assert catalog.latch_stats.acquisitions == 2
        assert catalog.latch_stats.timeouts == 1

    def test_non_blocking_contention_fails_fast(self):
        catalog = SinewCatalog()
        with catalog.exclusive_latch("loader"):
            started = time.monotonic()
            with pytest.raises(ConcurrencyError, match="held by loader"):
                with catalog.exclusive_latch("materializer", blocking=False):
                    pass
            assert time.monotonic() - started < 0.5
        assert catalog.latch_stats.contentions == 1
        assert catalog.latch_stats.timeouts == 0
        assert catalog.latch_stats.waits == 0

    def test_timeout_error_names_both_parties(self):
        catalog = SinewCatalog()
        done = threading.Event()

        def holder():
            with catalog.exclusive_latch("loader"):
                done.wait(5.0)

        thread = threading.Thread(target=holder, daemon=True)
        thread.start()
        while catalog.latch_owner != "loader":
            time.sleep(0.001)
        with pytest.raises(ConcurrencyError) as excinfo:
            with catalog.exclusive_latch("materializer", timeout=0.02):
                pass
        message = str(excinfo.value)
        assert "materializer" in message and "loader" in message
        done.set()
        thread.join()


class TestStatsUnderRacing:
    def test_loader_and_daemon_race_accounts_every_acquisition(self):
        """A daemon thread slowed at its injection points races a loader;
        the stats must balance exactly: every latch entry is either a clean
        acquisition or a counted wait, with zero losses."""
        sdb = SinewDB("race")
        sdb.create_collection("t")
        injector = FaultInjector()
        # keep the materializer inside the latch long enough for the
        # loader to actually block on it
        injector.plan(
            "materializer.before_step", "delay", delay=0.03, at=1, count=None
        )
        sdb.attach_faults(injector)
        sdb.load("t", [{"a": i, "b": f"s{i}"} for i in range(50)])
        from repro.rdbms.types import SqlType

        sdb.materialize("t", "a", SqlType.INTEGER)

        stats = sdb.catalog.latch_stats
        base_acquisitions = stats.acquisitions

        stop = threading.Event()
        loads = [0]

        def loading():
            while not stop.is_set():
                sdb.load("t", [{"a": 999, "b": "late"}])
                loads[0] += 1

        worker = threading.Thread(target=loading, daemon=True)
        sdb.start_daemon()
        worker.start()
        try:
            deadline = time.monotonic() + 5.0
            while (
                sdb.catalog.table("t").dirty_columns()
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
        finally:
            stop.set()
            worker.join(timeout=5.0)
            sdb.stop_daemon()

        assert loads[0] > 0
        # every load + every daemon step took the latch exactly once
        new_acquisitions = stats.acquisitions - base_acquisitions
        daemon_steps = sdb.daemon.steps
        assert new_acquisitions >= loads[0]
        assert new_acquisitions <= loads[0] + daemon_steps + 2
        # blocking mode: contention shows up as counted waits, never as
        # dropped work or fail-fast contentions
        assert stats.contentions == 0
        assert stats.timeouts == 0
        if stats.waits:
            assert stats.wait_seconds > 0.0

    def test_wait_seconds_accumulates(self):
        catalog = SinewCatalog()
        release = threading.Event()

        def holder():
            with catalog.exclusive_latch("loader"):
                release.wait(5.0)

        thread = threading.Thread(target=holder, daemon=True)
        thread.start()
        while catalog.latch_owner != "loader":
            time.sleep(0.001)

        waiter_done = threading.Event()

        def waiter():
            with catalog.exclusive_latch("materializer", timeout=5.0):
                pass
            waiter_done.set()

        wthread = threading.Thread(target=waiter, daemon=True)
        wthread.start()
        while catalog.latch_stats.waits == 0:
            time.sleep(0.001)
        time.sleep(0.05)
        release.set()
        thread.join()
        assert waiter_done.wait(5.0)
        wthread.join()
        assert catalog.latch_stats.waits == 1
        assert catalog.latch_stats.wait_seconds >= 0.04
        assert catalog.latch_stats.timeouts == 0
