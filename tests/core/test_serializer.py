"""Unit + property tests for Sinew's binary serialization format."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import serializer
from repro.rdbms.types import SqlType


def triple(attr_id, sql_type, value):
    return (attr_id, sql_type, value)


class TestRoundTrip:
    def test_scalar_types(self):
        data = serializer.serialize(
            [
                triple(1, SqlType.TEXT, "hello"),
                triple(2, SqlType.INTEGER, -42),
                triple(3, SqlType.REAL, 2.5),
                triple(4, SqlType.BOOLEAN, True),
            ]
        )
        assert serializer.extract(data, 1, SqlType.TEXT) == "hello"
        assert serializer.extract(data, 2, SqlType.INTEGER) == -42
        assert serializer.extract(data, 3, SqlType.REAL) == 2.5
        assert serializer.extract(data, 4, SqlType.BOOLEAN) is True

    def test_empty_document(self):
        data = serializer.serialize([])
        assert serializer.attribute_count(data) == 0
        assert serializer.attribute_ids(data) == []
        assert serializer.extract(data, 1, SqlType.TEXT) is None
        assert not serializer.has_attribute(data, 1)

    def test_nulls_are_omitted(self):
        data = serializer.serialize(
            [triple(1, SqlType.TEXT, "x"), triple(2, SqlType.TEXT, None)]
        )
        assert serializer.attribute_count(data) == 1
        assert not serializer.has_attribute(data, 2)

    def test_ids_stored_sorted(self):
        data = serializer.serialize(
            [
                triple(30, SqlType.INTEGER, 3),
                triple(10, SqlType.INTEGER, 1),
                triple(20, SqlType.INTEGER, 2),
            ]
        )
        assert serializer.attribute_ids(data) == [10, 20, 30]
        assert serializer.extract(data, 20, SqlType.INTEGER) == 2

    def test_nested_document(self):
        inner = serializer.serialize([triple(5, SqlType.TEXT, "inner")])
        outer = serializer.serialize([triple(1, SqlType.BYTEA, inner)])
        extracted = serializer.extract(outer, 1, SqlType.BYTEA)
        assert serializer.extract(extracted, 5, SqlType.TEXT) == "inner"

    def test_arrays(self):
        values = [1, "two", 3.0, True, None, [4, "five"]]
        data = serializer.serialize([triple(1, SqlType.ARRAY, values)])
        assert serializer.extract(data, 1, SqlType.ARRAY) == values

    def test_unicode_text(self):
        data = serializer.serialize([triple(1, SqlType.TEXT, "héllo wörld — ☃")])
        assert serializer.extract(data, 1, SqlType.TEXT) == "héllo wörld — ☃"

    def test_empty_string_value(self):
        data = serializer.serialize(
            [triple(1, SqlType.TEXT, ""), triple(2, SqlType.INTEGER, 7)]
        )
        assert serializer.extract(data, 1, SqlType.TEXT) == ""
        assert serializer.extract(data, 2, SqlType.INTEGER) == 7


class TestHeaderLayout:
    def test_header_structure_matches_figure_5(self):
        # [n][sorted ids][offsets][len][body]
        data = serializer.serialize(
            [triple(7, SqlType.INTEGER, 1), triple(3, SqlType.TEXT, "abcd")]
        )
        n = struct.unpack_from("<I", data, 0)[0]
        assert n == 2
        ids = struct.unpack_from("<2I", data, 4)
        assert list(ids) == [3, 7]
        offsets = struct.unpack_from("<3I", data, 12)
        assert offsets[0] == 0
        assert offsets[1] == 4  # 'abcd'
        assert offsets[2] == 12  # + 8-byte integer == total body length

    def test_missing_key_identified_from_header_only(self):
        data = serializer.serialize([triple(i * 2, SqlType.INTEGER, i) for i in range(50)])
        assert not serializer.has_attribute(data, 13)
        assert serializer.has_attribute(data, 12)


class TestIterateAndMutate:
    def test_iterate_yields_all(self):
        data = serializer.serialize(
            [triple(1, SqlType.INTEGER, 10), triple(2, SqlType.TEXT, "x")]
        )
        pairs = list(serializer.iterate(data))
        assert [aid for aid, _raw in pairs] == [1, 2]

    def test_remove_attribute(self):
        types = {1: SqlType.INTEGER, 2: SqlType.TEXT, 3: SqlType.REAL}
        data = serializer.serialize(
            [triple(1, SqlType.INTEGER, 10), triple(2, SqlType.TEXT, "x"),
             triple(3, SqlType.REAL, 1.5)]
        )
        smaller = serializer.remove_attribute(data, 2, types.__getitem__)
        assert serializer.attribute_ids(smaller) == [1, 3]
        assert serializer.extract(smaller, 1, SqlType.INTEGER) == 10
        assert serializer.extract(smaller, 2, SqlType.TEXT) is None
        assert len(smaller) < len(data)

    def test_add_attribute_inserts_and_replaces(self):
        types = {1: SqlType.INTEGER, 2: SqlType.TEXT}
        data = serializer.serialize([triple(1, SqlType.INTEGER, 10)])
        added = serializer.add_attribute(data, 2, SqlType.TEXT, "new", types.__getitem__)
        assert serializer.extract(added, 2, SqlType.TEXT) == "new"
        replaced = serializer.add_attribute(
            added, 2, SqlType.TEXT, "newer", types.__getitem__
        )
        assert serializer.extract(replaced, 2, SqlType.TEXT) == "newer"
        assert serializer.attribute_count(replaced) == 2

    def test_add_attribute_none_removes(self):
        types = {1: SqlType.INTEGER}
        data = serializer.serialize([triple(1, SqlType.INTEGER, 10)])
        cleared = serializer.add_attribute(data, 1, SqlType.INTEGER, None, types.__getitem__)
        assert serializer.attribute_count(cleared) == 0


class TestExtractMany:
    def test_mixed_present_absent(self):
        data = serializer.serialize(
            [triple(1, SqlType.INTEGER, 10), triple(5, SqlType.TEXT, "x")]
        )
        values = serializer.extract_many(
            data,
            [(1, SqlType.INTEGER), (3, SqlType.TEXT), (5, SqlType.TEXT)],
        )
        assert values == [10, None, "x"]


# ---------------------------------------------------------------------------
# property-based tests
# ---------------------------------------------------------------------------

_scalar_values = st.one_of(
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.booleans(),
    st.text(max_size=40),
)


def _typed(value):
    if isinstance(value, bool):
        return SqlType.BOOLEAN
    if isinstance(value, int):
        return SqlType.INTEGER
    if isinstance(value, float):
        return SqlType.REAL
    return SqlType.TEXT


@st.composite
def documents(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    ids = draw(
        st.lists(
            st.integers(min_value=1, max_value=10_000),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    values = draw(st.lists(_scalar_values, min_size=n, max_size=n))
    return [(aid, _typed(v), v) for aid, v in zip(ids, values)]


class TestProperties:
    @given(documents())
    @settings(max_examples=150, deadline=None)
    def test_every_attribute_extractable(self, doc):
        data = serializer.serialize(doc)
        for attr_id, sql_type, value in doc:
            assert serializer.extract(data, attr_id, sql_type) == value
            assert serializer.has_attribute(data, attr_id)

    @given(documents())
    @settings(max_examples=100, deadline=None)
    def test_header_ids_sorted_and_complete(self, doc):
        data = serializer.serialize(doc)
        ids = serializer.attribute_ids(data)
        assert ids == sorted(ids)
        assert set(ids) == {aid for aid, _t, _v in doc}

    @given(documents(), st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_absent_key_is_none(self, doc, probe):
        data = serializer.serialize(doc)
        present = {aid for aid, _t, _v in doc}
        if probe not in present:
            assert serializer.extract(data, probe, SqlType.TEXT) is None
            assert not serializer.has_attribute(data, probe)

    @given(documents())
    @settings(max_examples=60, deadline=None)
    def test_remove_then_absent_others_unchanged(self, doc):
        if not doc:
            return
        types = {aid: t for aid, t, _v in doc}
        data = serializer.serialize(doc)
        victim = doc[0][0]
        smaller = serializer.remove_attribute(data, victim, types.__getitem__)
        assert not serializer.has_attribute(smaller, victim)
        for attr_id, sql_type, value in doc[1:]:
            assert serializer.extract(smaller, attr_id, sql_type) == value

    @given(st.lists(st.one_of(_scalar_values, st.none()), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_array_roundtrip(self, values):
        encoded = serializer.encode_array(values)
        assert serializer.decode_array(encoded) == values
