"""Unit tests for reservoir extraction (the UDF layer)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.catalog import SinewCatalog
from repro.core.extractors import ReservoirExtractor
from repro.core.loader import SinewLoader
from repro.rdbms.database import Database
from repro.rdbms.types import SqlType


@pytest.fixture()
def env():
    db = Database("ext")
    db.create_table("t", [("_id", SqlType.INTEGER), ("data", SqlType.BYTEA)])
    catalog = SinewCatalog()
    loader = SinewLoader(db, catalog)
    extractor = ReservoirExtractor(catalog)
    return loader, extractor


def serialize(loader, document):
    return loader.serialize_document(document)


class TestTypedExtraction:
    def test_each_type(self, env):
        loader, extractor = env
        data = serialize(
            loader, {"t": "x", "i": 3, "r": 1.5, "b": False, "a": [1, 2]}
        )
        assert extractor.extract_text(data, "t") == "x"
        assert extractor.extract_int(data, "i") == 3
        assert extractor.extract_real(data, "r") == 1.5
        assert extractor.extract_bool(data, "b") is False
        assert extractor.extract_array(data, "a") == [1, 2]

    def test_type_mismatch_returns_null_not_error(self, env):
        # the paper's selective typed extraction for multi-typed keys
        loader, extractor = env
        int_doc = serialize(loader, {"dyn": 5})
        str_doc = serialize(loader, {"dyn": "five"})
        assert extractor.extract_num(int_doc, "dyn") == 5
        assert extractor.extract_num(str_doc, "dyn") is None
        assert extractor.extract_text(str_doc, "dyn") == "five"
        assert extractor.extract_text(int_doc, "dyn") is None

    def test_extract_num_prefers_int_then_real(self, env):
        loader, extractor = env
        real_doc = serialize(loader, {"v": 1.5})
        assert extractor.extract_num(real_doc, "v") == 1.5

    def test_none_data(self, env):
        _loader, extractor = env
        assert extractor.extract_text(None, "k") is None
        assert extractor.exists(None, "k") is False

    def test_extract_any_downcasts(self, env):
        loader, extractor = env
        assert extractor.extract_any(serialize(loader, {"v": 5}), "v") == "5"
        assert extractor.extract_any(serialize(loader, {"v": True}), "v") == "true"
        assert extractor.extract_any(serialize(loader, {"v": "s"}), "v") == "s"
        arr = extractor.extract_any(serialize(loader, {"v": [1, "a"]}), "v")
        assert json.loads(arr) == [1, "a"]


class TestNestedNavigation:
    def test_two_levels(self, env):
        loader, extractor = env
        data = serialize(loader, {"user": {"geo": {"lat": 1.25}}})
        assert extractor.extract_real(data, "user.geo.lat") == 1.25
        assert extractor.exists(data, "user.geo.lat")
        assert not extractor.exists(data, "user.geo.lon")

    def test_missing_parent(self, env):
        loader, extractor = env
        data = serialize(loader, {"a": 1})
        assert extractor.extract_text(data, "user.name") is None

    def test_exists_any_type(self, env):
        loader, extractor = env
        data = serialize(loader, {"dyn": 5})
        serialize(loader, {"dyn": "s"})  # register the text attribute too
        assert extractor.exists(data, "dyn")


class TestToDict:
    def test_roundtrip(self, env):
        loader, extractor = env
        document = {
            "a": 1,
            "b": "x",
            "user": {"id": 7, "geo": {"lat": 0.5}},
            "tags": ["p", "q"],
            "mixed": [1, {"k": "v"}],
        }
        data = serialize(loader, document)
        assert extractor.to_dict(data) == document

    def test_to_json_sorted(self, env):
        loader, extractor = env
        data = serialize(loader, {"b": 1, "a": 2})
        assert extractor.to_json(data) == '{"a": 2, "b": 1}'
        assert extractor.to_json(None) is None


class TestPathMutation:
    def test_set_top_level(self, env):
        loader, extractor = env
        data = serialize(loader, {"a": 1})
        updated = extractor.set_path(data, "b", SqlType.TEXT, "new")
        assert extractor.to_dict(updated) == {"a": 1, "b": "new"}

    def test_set_nested(self, env):
        loader, extractor = env
        data = serialize(loader, {"user": {"id": 7}})
        updated = extractor.set_path(data, "user.id", SqlType.INTEGER, 8)
        assert extractor.to_dict(updated) == {"user": {"id": 8}}

    def test_remove_nested(self, env):
        loader, extractor = env
        data = serialize(loader, {"user": {"id": 7, "lang": "en"}})
        updated = extractor.remove_path(data, "user.id", SqlType.INTEGER)
        assert extractor.to_dict(updated) == {"user": {"lang": "en"}}

    def test_remove_missing_is_noop(self, env):
        loader, extractor = env
        data = serialize(loader, {"a": 1})
        assert extractor.remove_path(data, "zz", SqlType.TEXT) == data

    def test_set_none_clears(self, env):
        loader, extractor = env
        data = serialize(loader, {"a": 1, "b": 2})
        updated = extractor.set_path(data, "a", SqlType.INTEGER, None)
        assert extractor.to_dict(updated) == {"b": 2}


_json_scalars = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.text(max_size=20),
)

_json_documents = st.recursive(
    st.dictionaries(
        st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
        ),
        _json_scalars,
        max_size=6,
    ),
    lambda children: st.dictionaries(
        st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8),
        st.one_of(_json_scalars, children, st.lists(_json_scalars, max_size=4)),
        max_size=6,
    ),
    max_leaves=12,
)


class TestProperties:
    @given(_json_documents)
    @settings(max_examples=100, deadline=None)
    def test_serialize_to_dict_roundtrip(self, document):
        db = Database("prop")
        db.create_table("t", [("_id", SqlType.INTEGER), ("data", SqlType.BYTEA)])
        catalog = SinewCatalog()
        loader = SinewLoader(db, catalog)
        extractor = ReservoirExtractor(catalog)
        data = loader.serialize_document(document)
        assert extractor.to_dict(data) == document

    @given(_json_documents)
    @settings(max_examples=60, deadline=None)
    def test_flattened_paths_all_extractable(self, document):
        from repro.core.document import flatten, infer_sql_type

        db = Database("prop2")
        catalog = SinewCatalog()
        loader = SinewLoader(db, catalog)
        extractor = ReservoirExtractor(catalog)
        data = loader.serialize_document(document)
        for dotted, value in flatten(document):
            if isinstance(value, (dict, list)):
                continue
            sql_type = infer_sql_type(value)
            assert extractor.extract_typed(data, dotted, sql_type) == value
