"""Tests for the query-pattern-adaptive materialization mode (§3.1.3's
"evolving data models and query patterns")."""

import pytest

from repro.core import MaterializationPolicy, SinewConfig, SinewDB


def adaptive_sdb(hot_threshold=5):
    config = SinewConfig(
        policy=MaterializationPolicy(hot_access_threshold=hot_threshold)
    )
    sdb = SinewDB("adaptive", config)
    sdb.create_collection("t")
    documents = []
    for index in range(500):
        document = {"dense": f"d{index}"}
        if index % 20 == 0:
            document["rare"] = f"r{index}"  # 5% dense: below the base policy
        documents.append(document)
    sdb.load("t", documents)
    return sdb


class TestAccessTracking:
    def test_rewriter_counts_accesses(self):
        sdb = adaptive_sdb()
        for _ in range(3):
            sdb.query("SELECT rare FROM t WHERE rare IS NOT NULL")
        attr = sdb.catalog.attributes_named("rare")[0]
        state = sdb.catalog.table("t").state(attr.attr_id)
        # each query references 'rare' twice (projection + predicate)
        assert state.access_count == 6

    def test_untouched_keys_stay_at_zero(self):
        sdb = adaptive_sdb()
        sdb.query("SELECT dense FROM t")
        attr = sdb.catalog.attributes_named("rare")[0]
        assert sdb.catalog.table("t").state(attr.attr_id).access_count == 0


class TestHotMaterialization:
    def test_sparse_but_hot_key_materializes(self):
        sdb = adaptive_sdb(hot_threshold=5)
        for _ in range(5):
            sdb.query("SELECT _id FROM t WHERE rare = 'r40'")
        report = sdb.analyze_schema("t")
        hot = [d for d in report.decisions if d.reason == "hot"]
        assert [d.key_name for d in hot] == ["rare"]
        sdb.run_materializer("t")
        assert any(
            key == "rare" and storage == "physical"
            for key, _t, storage in sdb.logical_schema("t")
        )
        # and the answers stay correct
        assert sdb.query("SELECT count(*) FROM t WHERE rare IS NOT NULL").scalar() == 25

    def test_cold_sparse_key_stays_virtual(self):
        sdb = adaptive_sdb(hot_threshold=5)
        sdb.query("SELECT _id FROM t WHERE rare = 'r40'")  # only one access
        report = sdb.analyze_schema("t")
        assert "rare" not in report.materialized_keys()

    def test_disabled_by_default(self):
        sdb = SinewDB("plain")
        sdb.create_collection("t")
        sdb.load("t", [{"rare": i} if i % 20 == 0 else {"x": i} for i in range(200)])
        for _ in range(50):
            sdb.query("SELECT rare FROM t")
        report = sdb.analyze_schema("t")
        assert "rare" not in report.materialized_keys()

    def test_window_resets_after_analysis(self):
        sdb = adaptive_sdb(hot_threshold=5)
        for _ in range(5):
            sdb.query("SELECT rare FROM t")
        sdb.analyze_schema("t")
        attr = sdb.catalog.attributes_named("rare")[0]
        assert sdb.catalog.table("t").state(attr.attr_id).access_count == 0

    def test_hot_column_not_dematerialized_while_hot(self):
        sdb = adaptive_sdb(hot_threshold=3)
        for _ in range(3):
            sdb.query("SELECT rare FROM t")
        sdb.settle("t")  # materializes 'rare' as hot
        # keep it hot: more queries before the next pass
        for _ in range(3):
            sdb.query("SELECT rare FROM t")
        report = sdb.analyze_schema("t")
        assert "rare" not in report.dematerialized_keys()

    def test_gone_cold_column_dematerializes(self):
        sdb = adaptive_sdb(hot_threshold=3)
        for _ in range(3):
            sdb.query("SELECT rare FROM t")
        sdb.settle("t")
        # no further queries touch 'rare': next pass cools it down
        report = sdb.analyze_schema("t")
        assert "rare" in report.dematerialized_keys()
        sdb.run_materializer("t")
        assert sdb.query("SELECT count(*) FROM t WHERE rare IS NOT NULL").scalar() == 25
