"""Unit tests for the section 4.2 array storage strategies."""

import pytest

from repro.core import ArrayStorageManager, ArrayStrategy, SinewDB
from repro.rdbms.errors import ExecutionError, PlanningError

DOCS = [
    {"tags": ["red", "green"], "n": 0},
    {"tags": ["green", "blue"], "n": 1},
    {"tags": ["blue"], "n": 2},
    {"n": 3},  # no array at all
    {"tags": [], "n": 4},
]


def fresh():
    sdb = SinewDB("arrays")
    sdb.create_collection("t")
    sdb.load("t", DOCS)
    return sdb, ArrayStorageManager(sdb)


class TestNative:
    def test_containment(self):
        _sdb, manager = fresh()
        assert manager.contains("t", "tags", "green") == [0, 1]
        assert manager.contains("t", "tags", "purple") == []


class TestPositional:
    def test_requires_fixed_size(self):
        _sdb, manager = fresh()
        with pytest.raises(PlanningError):
            manager.apply("t", "tags", ArrayStrategy.POSITIONAL)

    def test_containment_after_apply(self):
        sdb, manager = fresh()
        config = manager.apply("t", "tags", ArrayStrategy.POSITIONAL, fixed_size=2)
        assert config.position_columns == ("tags_0", "tags_1")
        assert manager.contains("t", "tags", "green") == [0, 1]
        assert manager.contains("t", "tags", "blue") == [1, 2]

    def test_positions_are_columns(self):
        sdb, manager = fresh()
        manager.apply("t", "tags", ArrayStrategy.POSITIONAL, fixed_size=2)
        result = sdb.db.execute("SELECT tags_0 FROM t WHERE _id = 0")
        assert result.rows == [("red",)]

    def test_oversized_array_rejected(self):
        _sdb, manager = fresh()
        with pytest.raises(ExecutionError):
            manager.apply("t", "tags", ArrayStrategy.POSITIONAL, fixed_size=1)

    def test_array_removed_from_reservoir(self):
        sdb, manager = fresh()
        manager.apply("t", "tags", ArrayStrategy.POSITIONAL, fixed_size=2)
        table = sdb.db.table("t")
        data_position = table.schema.position_of("data")
        for _rid, row in table.scan():
            assert sdb.extractor.extract_array(row[data_position], "tags") is None


class TestElementTable:
    def test_containment_after_apply(self):
        sdb, manager = fresh()
        config = manager.apply("t", "tags", ArrayStrategy.ELEMENT_TABLE)
        assert config.element_table == "t__tags"
        assert manager.contains("t", "tags", "green") == [0, 1]

    def test_element_table_shape(self):
        sdb, manager = fresh()
        manager.apply("t", "tags", ArrayStrategy.ELEMENT_TABLE)
        rows = sdb.db.execute(
            "SELECT parent_id, idx, element FROM t__tags ORDER BY parent_id, idx"
        ).rows
        assert rows == [
            (0, 0, "red"),
            (0, 1, "green"),
            (1, 0, "green"),
            (1, 1, "blue"),
            (2, 0, "blue"),
        ]

    def test_statistics_available_on_elements(self):
        sdb, manager = fresh()
        manager.apply("t", "tags", ArrayStrategy.ELEMENT_TABLE)
        stats = sdb.db.stats("t__tags")
        assert stats is not None
        assert stats.columns["element"].n_distinct == 3


class TestStrategyEquivalence:
    def test_all_strategies_agree(self):
        for strategy, kwargs in [
            (ArrayStrategy.NATIVE, {}),
            (ArrayStrategy.POSITIONAL, {"fixed_size": 2}),
            (ArrayStrategy.ELEMENT_TABLE, {}),
        ]:
            _sdb, manager = fresh()
            if strategy is not ArrayStrategy.NATIVE:
                manager.apply("t", "tags", strategy, **kwargs)
            assert manager.contains("t", "tags", "green") == [0, 1], strategy
            assert manager.contains("t", "tags", "nope") == [], strategy
