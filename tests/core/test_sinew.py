"""End-to-end tests of the SinewDB facade."""

import pytest

from repro.core import SinewConfig, SinewDB
from repro.rdbms.errors import CatalogError, PlanningError
from repro.rdbms.types import SqlType

DOCS = [
    {"url": "www.sample-site.com", "hits": 22, "avg_site_visit": 128.5, "country": "pl"},
    {
        "url": "www.sample-site2.com",
        "hits": 15,
        "date": "8/19/13",
        "ip": "123.45.67.89",
        "owner": "John P. Smith",
    },
]


@pytest.fixture()
def sdb():
    instance = SinewDB("facade")
    instance.create_collection("webrequests")
    instance.load("webrequests", DOCS)
    return instance


class TestCollections:
    def test_create_duplicate_rejected(self, sdb):
        with pytest.raises(CatalogError):
            sdb.create_collection("webrequests")

    def test_unknown_collection_rejected(self, sdb):
        with pytest.raises(CatalogError):
            sdb.load("ghost", [{}])

    def test_drop_collection(self, sdb):
        sdb.drop_collection("webrequests")
        assert "webrequests" not in sdb.collections()


class TestPaperRunningExample:
    """The webrequests example of Figures 2-3 and section 3.2.2."""

    def test_figure_3_projection(self, sdb):
        result = sdb.query("SELECT url FROM webrequests WHERE hits > 20")
        assert result.rows == [("www.sample-site.com",)]

    def test_section_322_rewrite_example(self, sdb):
        result = sdb.query(
            "SELECT url, owner FROM webrequests WHERE ip IS NOT NULL"
        )
        assert result.rows == [("www.sample-site2.com", "John P. Smith")]

    def test_missing_keys_are_null(self, sdb):
        result = sdb.query("SELECT owner FROM webrequests WHERE hits = 22")
        assert result.rows == [(None,)]

    def test_logical_schema_lists_all_keys(self, sdb):
        keys = {key for key, _t, _s in sdb.logical_schema("webrequests")}
        assert keys == {
            "url", "hits", "avg_site_visit", "country", "date", "ip", "owner"
        }


class TestStarQueries:
    def test_star_reconstructs_documents(self, sdb):
        result = sdb.query("SELECT * FROM webrequests WHERE hits > 20")
        assert result.columns == ["document"]
        assert result.rows[0][0] == DOCS[0]

    def test_star_after_materialization(self, sdb):
        sdb.materialize("webrequests", "url", SqlType.TEXT)
        sdb.run_materializer("webrequests")
        result = sdb.query("SELECT * FROM webrequests WHERE hits > 20")
        assert result.rows[0][0] == DOCS[0]

    def test_star_join_two_documents(self, sdb):
        sdb.create_collection("owners")
        sdb.load("owners", [{"name": "John P. Smith", "age": 44}])
        result = sdb.query(
            "SELECT * FROM webrequests w, owners o WHERE w.owner = o.name"
        )
        assert result.columns == ["w", "o"]
        assert result.rows[0][0]["url"] == "www.sample-site2.com"
        assert result.rows[0][1]["age"] == 44

    def test_mixed_star_and_expression(self, sdb):
        result = sdb.query("SELECT hits, * FROM webrequests WHERE hits = 15")
        assert result.columns[0] == "hits"
        assert result.rows[0][0] == 15
        assert result.rows[0][1]["owner"] == "John P. Smith"


class TestUpdates:
    def test_update_virtual_column(self, sdb):
        result = sdb.execute(
            "UPDATE webrequests SET owner = 'New Owner' WHERE hits = 22"
        )
        assert result.rowcount == 1
        assert sdb.query("SELECT owner FROM webrequests WHERE hits = 22").rows == [
            ("New Owner",)
        ]

    def test_update_physical_column(self, sdb):
        sdb.materialize("webrequests", "url", SqlType.TEXT)
        sdb.run_materializer("webrequests")
        sdb.execute("UPDATE webrequests SET url = 'changed' WHERE hits = 22")
        assert sdb.query("SELECT url FROM webrequests WHERE hits = 22").rows == [
            ("changed",)
        ]

    def test_update_creates_new_attribute(self, sdb):
        sdb.execute("UPDATE webrequests SET brand_new = 'x' WHERE hits = 15")
        assert sdb.query(
            "SELECT brand_new FROM webrequests WHERE hits = 15"
        ).rows == [("x",)]
        keys = {key for key, _t, _s in sdb.logical_schema("webrequests")}
        assert "brand_new" in keys

    def test_delete(self, sdb):
        result = sdb.execute("DELETE FROM webrequests WHERE hits = 15")
        assert result.rowcount == 1
        assert sdb.query("SELECT count(*) FROM webrequests").scalar() == 1

    def test_nobench_style_sparse_update(self, sdb):
        sdb.load("webrequests", [{"sparse_589": "MAGIC", "n": 1}])
        result = sdb.execute(
            "UPDATE webrequests SET sparse_588 = 'DUMMY' "
            "WHERE sparse_589 = 'MAGIC'"
        )
        assert result.rowcount == 1
        check = sdb.query(
            "SELECT sparse_588 FROM webrequests WHERE sparse_589 = 'MAGIC'"
        )
        assert check.rows == [("DUMMY",)]


class TestDocumentsIterator:
    def test_roundtrip(self, sdb):
        documents = dict(sdb.documents("webrequests"))
        assert documents[0] == DOCS[0]
        assert documents[1] == DOCS[1]

    def test_includes_materialized_values(self, sdb):
        sdb.materialize("webrequests", "hits", SqlType.INTEGER)
        sdb.run_materializer("webrequests")
        documents = dict(sdb.documents("webrequests"))
        assert documents[0]["hits"] == 22


class TestTextSearch:
    def make_indexed(self):
        sdb = SinewDB("txt", SinewConfig(enable_text_index=True))
        sdb.create_collection("posts")
        sdb.load(
            "posts",
            [
                {"title": "sinew is a sql system", "votes": 5},
                {"title": "mongodb and friends", "votes": 2},
                {"body": "sql databases forever", "votes": 9},
            ],
        )
        return sdb

    def test_matches_in_where_clause(self):
        sdb = self.make_indexed()
        result = sdb.query("SELECT votes FROM posts WHERE matches('*', 'sql')")
        assert sorted(result.column(0)) == [5, 9]

    def test_matches_with_field_restriction(self):
        sdb = self.make_indexed()
        result = sdb.query(
            "SELECT votes FROM posts WHERE matches('title', 'sql')"
        )
        assert result.column(0) == [5]

    def test_matches_combined_with_predicate(self):
        sdb = self.make_indexed()
        result = sdb.query(
            "SELECT votes FROM posts WHERE matches('*', 'sql') AND votes > 6"
        )
        assert result.column(0) == [9]

    def test_matches_without_index_raises(self, sdb):
        with pytest.raises(PlanningError, match="text index"):
            sdb.query("SELECT url FROM webrequests WHERE matches('*', 'x')")

    def test_index_follows_updates(self):
        sdb = self.make_indexed()
        sdb.execute("UPDATE posts SET title = 'renamed entirely' WHERE votes = 5")
        result = sdb.query("SELECT votes FROM posts WHERE matches('title', 'renamed')")
        assert result.column(0) == [5]


class TestExplain:
    def test_explain_shows_rewritten_plan(self, sdb):
        plan = sdb.explain("SELECT url FROM webrequests WHERE hits > 20")
        assert "extract_key" in plan
        assert "Seq Scan on webrequests" in plan

    def test_explain_star(self, sdb):
        plan = sdb.explain("SELECT * FROM webrequests")
        assert "sinew_to_json" in plan


class TestCatalogSync:
    def test_sync_catalog_queryable(self, sdb):
        sdb.sync_catalog()
        result = sdb.db.execute(
            "SELECT key_name FROM _sinew_attributes ORDER BY key_name"
        )
        assert ("url",) in result.rows
