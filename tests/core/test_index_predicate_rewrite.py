"""Tests for automatic index prefiltering of virtual-column predicates
(section 4.3: "rewriting predicates over virtual columns into queries of
the text index")."""

import pytest

from repro.core import SinewConfig, SinewDB
from repro.rdbms.types import SqlType


def indexed_sdb(prefilter=True):
    config = SinewConfig(
        enable_text_index=True, rewrite_predicates_with_index=prefilter
    )
    sdb = SinewDB("idxrw", config)
    sdb.create_collection("t")
    documents = []
    for index in range(400):
        document = {"n": index, "color": ["red", "green", "blue"][index % 3]}
        if index % 50 == 0:
            document["rare"] = "needle" if index % 100 == 0 else "hay"
        documents.append(document)
    sdb.load("t", documents)
    return sdb


class TestPrefilterPlan:
    def test_equality_on_virtual_text_gets_index_probe(self):
        sdb = indexed_sdb()
        plan = sdb.explain("SELECT n FROM t WHERE rare = 'needle'")
        assert "sinew_matches" in plan
        assert "extract_key_text" in plan  # the exactness recheck stays

    def test_disabled_without_option(self):
        sdb = indexed_sdb(prefilter=False)
        plan = sdb.explain("SELECT n FROM t WHERE rare = 'needle'")
        assert "sinew_matches" not in plan

    def test_numeric_equality_untouched(self):
        sdb = indexed_sdb()
        plan = sdb.explain("SELECT n FROM t WHERE n = 5")
        assert "sinew_matches" not in plan

    def test_multi_token_literal_untouched(self):
        sdb = indexed_sdb()
        plan = sdb.explain("SELECT n FROM t WHERE rare = 'two words'")
        assert "sinew_matches" not in plan

    def test_physical_column_untouched(self):
        sdb = indexed_sdb()
        sdb.materialize("t", "color", SqlType.TEXT)
        sdb.run_materializer("t")
        plan = sdb.explain("SELECT n FROM t WHERE color = 'red'")
        assert "sinew_matches" not in plan

    def test_range_predicates_untouched(self):
        sdb = indexed_sdb()
        plan = sdb.explain("SELECT n FROM t WHERE rare > 'a'")
        assert "sinew_matches" not in plan


class TestPrefilterResults:
    def test_results_identical_with_and_without(self):
        with_index = indexed_sdb(prefilter=True)
        without = indexed_sdb(prefilter=False)
        sql = "SELECT n FROM t WHERE rare = 'needle'"
        assert sorted(with_index.query(sql).column(0)) == sorted(
            without.query(sql).column(0)
        )
        assert with_index.query(sql).rows  # non-empty

    def test_recheck_filters_token_collisions(self):
        # two values sharing a token must not cross-match under equality
        config = SinewConfig(enable_text_index=True, rewrite_predicates_with_index=True)
        sdb = SinewDB("collide", config)
        sdb.create_collection("t")
        sdb.load("t", [{"k": "alpha", "n": 1}, {"k": "ALPHA", "n": 2}])
        result = sdb.query("SELECT n FROM t WHERE k = 'alpha'")
        # tokenization lowercases both, but the recheck enforces exact equality
        assert result.column(0) == [1]

    def test_prefilter_reduces_extraction_calls(self):
        sdb = indexed_sdb(prefilter=True)
        sdb.db.counters.reset()
        sdb.query("SELECT n FROM t WHERE rare = 'needle'")
        with_index_calls = sdb.db.counters.udf_calls

        plain = indexed_sdb(prefilter=False)
        plain.db.counters.reset()
        plain.query("SELECT n FROM t WHERE rare = 'needle'")
        without_calls = plain.db.counters.udf_calls
        # extraction ran only on the index candidates (8 docs), not all 400
        assert with_index_calls < without_calls / 4
