"""Unit tests for the fault-injection layer (repro.testing.faults)."""

import pytest

from repro.testing.faults import (
    DaemonKilled,
    FaultInjector,
    InjectedFault,
    known_points,
    register_point,
)


class TestRegistry:
    def test_known_points_cover_all_layers(self):
        points = known_points()
        assert {p.split(".")[0] for p in points} >= {
            "loader", "materializer", "daemon", "storage",
        }
        assert "materializer.before_clear_dirty" in points
        assert "loader.after_insert" in points
        assert "storage.write_row" in points

    def test_plan_rejects_unknown_point(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultInjector().plan("materializer.no_such_point")

    def test_fire_rejects_unknown_point(self):
        with pytest.raises(ValueError, match="unregistered"):
            FaultInjector().fire("not.a.point")

    def test_register_point_extends_registry(self):
        name = register_point("daemon.test_only_point")
        assert name in known_points()
        injector = FaultInjector()
        injector.plan(name)
        with pytest.raises(InjectedFault):
            injector.fire(name)


class TestTriggering:
    def test_raise_on_nth_hit_only(self):
        injector = FaultInjector()
        injector.plan("daemon.before_step", "raise", at=3)
        injector.fire("daemon.before_step")
        injector.fire("daemon.before_step")
        with pytest.raises(InjectedFault) as error:
            injector.fire("daemon.before_step")
        assert error.value.point == "daemon.before_step"
        # one-shot by default: the 4th hit passes
        injector.fire("daemon.before_step")
        assert injector.hits["daemon.before_step"] == 4
        assert injector.fired("daemon.before_step") == 1

    def test_kill_action_raises_daemon_killed(self):
        injector = FaultInjector()
        injector.kill_at("materializer.before_row_move")
        with pytest.raises(DaemonKilled):
            injector.fire("materializer.before_row_move")

    def test_every_hit_window(self):
        injector = FaultInjector()
        injector.plan("loader.before_insert", at=2, count=2)
        injector.fire("loader.before_insert")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.fire("loader.before_insert")
        injector.fire("loader.before_insert")  # window exhausted

    def test_where_filter_counts_only_matching_context(self):
        injector = FaultInjector()
        injector.plan("storage.write_row", at=2, where={"table": "t"})
        injector.fire("storage.write_row", table="other")
        injector.fire("storage.write_row", table="t")
        injector.fire("storage.write_row", table="other")
        with pytest.raises(InjectedFault):
            injector.fire("storage.write_row", table="t")

    def test_custom_exception_type(self):
        class Boom(RuntimeError):
            pass

        injector = FaultInjector()
        injector.plan("loader.after_insert", exception=Boom)
        with pytest.raises(Boom):
            injector.fire("loader.after_insert")

    def test_delay_action_sleeps_without_raising(self):
        injector = FaultInjector()
        injector.plan("daemon.after_step", "delay", delay=0.001, count=None)
        injector.fire("daemon.after_step")
        injector.fire("daemon.after_step")
        assert injector.fired("daemon.after_step") == 2

    def test_reset_disarms_everything(self):
        injector = FaultInjector()
        injector.plan("daemon.before_step")
        injector.reset()
        injector.fire("daemon.before_step")
        assert injector.fired() == 0
        assert not injector.pending()


class TestSeededSchedules:
    def test_same_seed_same_schedule(self):
        a = FaultInjector().schedule_from_seed(1234, n_faults=5)
        b = FaultInjector().schedule_from_seed(1234, n_faults=5)
        assert [(p.point, p.at) for p in a] == [(p.point, p.at) for p in b]

    def test_different_seeds_differ(self):
        a = FaultInjector().schedule_from_seed(1, n_faults=8)
        b = FaultInjector().schedule_from_seed(2, n_faults=8)
        assert [(p.point, p.at) for p in a] != [(p.point, p.at) for p in b]

    def test_schedule_respects_point_pool(self):
        pool = ["daemon.before_step", "daemon.after_step"]
        plans = FaultInjector().schedule_from_seed(7, pool, n_faults=6)
        assert all(p.point in pool for p in plans)
