"""Tests for the interactive shell (driven programmatically)."""

import io
import json

import pytest

from repro.shell import SinewShell


@pytest.fixture()
def shell(tmp_path):
    out = io.StringIO()
    instance = SinewShell(out=out)
    return instance, out, tmp_path


def output_of(out: io.StringIO) -> str:
    return out.getvalue()


class TestMetaCommands:
    def test_create_and_list_collections(self, shell):
        sh, out, _tmp = shell
        sh.run(["\\c posts", "\\d"])
        assert "created collection 'posts'" in output_of(out)
        assert "collections: posts" in output_of(out)

    def test_load_json_lines(self, shell):
        sh, out, tmp = shell
        path = tmp / "docs.jsonl"
        path.write_text(
            "\n".join(json.dumps({"k": i, "v": f"x{i}"}) for i in range(5))
        )
        sh.run([f"\\load posts {path}"])
        assert "loaded 5 documents" in output_of(out)
        sh.run_line("SELECT count(*) FROM posts")
        assert "(1 rows)" in output_of(out)

    def test_describe_schema(self, shell):
        sh, out, _tmp = shell
        sh.run(["\\c t"])
        sh.sdb.load("t", [{"a": 1, "b": "x"}])
        sh.run_line("\\d t")
        text = output_of(out)
        assert "a" in text and "integer" in text and "virtual" in text

    def test_explain(self, shell):
        sh, out, _tmp = shell
        sh.run(["\\c t"])
        sh.sdb.load("t", [{"a": 1}])
        sh.run_line("\\explain SELECT a FROM t WHERE a > 0")
        assert "Seq Scan on t" in output_of(out)

    def test_settle(self, shell):
        sh, out, _tmp = shell
        sh.run(["\\c t"])
        sh.sdb.load("t", [{"k": f"v{i}"} for i in range(300)])
        sh.run_line("\\settle t")
        assert "values moved" in output_of(out)

    def test_catalog_dump(self, shell):
        sh, out, _tmp = shell
        sh.run(["\\c t"])
        sh.sdb.load("t", [{"some_key": 1}])
        sh.run_line("\\catalog")
        assert "some_key" in output_of(out)

    def test_quit(self, shell):
        sh, _out, _tmp = shell
        sh.run(["\\q", "\\c never_reached"])
        assert sh.running is False
        assert "never_reached" not in sh.sdb.collections()

    def test_unknown_meta(self, shell):
        sh, out, _tmp = shell
        sh.run_line("\\frobnicate")
        assert "unknown meta-command" in output_of(out)

    def test_daemon_status_default(self, shell):
        sh, out, _tmp = shell
        sh.run_line("\\daemon")
        text = output_of(out)
        assert "state:        idle" in text
        assert "backlog:      (empty)" in text
        assert "last error:   (none)" in text

    def test_daemon_start_stop_settles_backlog(self, shell):
        from repro.rdbms.types import SqlType

        sh, out, _tmp = shell
        sh.run(["\\c t"])
        sh.sdb.load("t", [{"a": i} for i in range(20)])
        sh.sdb.materialize("t", "a", SqlType.INTEGER)
        sh.run_line("\\daemon start")
        assert "daemon started" in output_of(out)
        assert sh.sdb.daemon.wait_until_idle(10.0)
        sh.run_line("\\daemon stop")
        sh.run_line("\\daemon status")
        text = output_of(out)
        assert "daemon stopped" in text
        assert "state:        stopped" in text
        assert "rows moved:   20" in text

    def test_daemon_usage_hint(self, shell):
        sh, out, _tmp = shell
        sh.run_line("\\daemon frob")
        assert "usage: \\daemon" in output_of(out)


class TestSqlAndErrors:
    def test_select_renders_table(self, shell):
        sh, out, _tmp = shell
        sh.run(["\\c t"])
        sh.sdb.load("t", [{"a": 1}, {"a": 2}])
        sh.run_line("SELECT a FROM t ORDER BY a")
        text = output_of(out)
        assert "| a" in text
        assert "(2 rows)" in text

    def test_update_reports_rowcount(self, shell):
        sh, out, _tmp = shell
        sh.run(["\\c t"])
        sh.sdb.load("t", [{"a": 1}, {"a": 2}])
        sh.run_line("UPDATE t SET b = 'x' WHERE a = 1")
        assert "OK (1 rows affected)" in output_of(out)

    def test_sql_error_is_caught(self, shell):
        sh, out, _tmp = shell
        sh.run_line("SELECT FROM nothing")
        assert "ERROR:" in output_of(out)
        assert sh.running  # the shell survives

    def test_missing_file_error(self, shell):
        sh, out, _tmp = shell
        sh.run(["\\c t", "\\load t /nonexistent/file.jsonl"])
        assert "ERROR:" in output_of(out)

    def test_blank_and_comment_lines_ignored(self, shell):
        sh, out, _tmp = shell
        sh.run(["", "   ", "-- a comment"])
        assert output_of(out) == ""

    def test_row_truncation_note(self, shell):
        sh, out, _tmp = shell
        sh.run(["\\c t"])
        sh.sdb.load("t", [{"a": i} for i in range(150)])
        sh.run_line("SELECT a FROM t")
        assert "first 100 shown" in output_of(out)


class TestAnalysisCommands:
    def test_lint_reports_diagnostics(self, shell):
        sh, out, _tmp = shell
        sh.run(["\\c t"])
        sh.sdb.load("t", [{"a": 1}])
        sh.run_line("\\lint SELECT missing_key FROM t")
        text = output_of(out)
        assert "SNW201" in text
        assert "^" in text  # caret underline

    def test_lint_clean_query(self, shell):
        sh, out, _tmp = shell
        sh.run(["\\c t"])
        sh.sdb.load("t", [{"a": 1}])
        sh.run_line("\\lint SELECT a FROM t")
        assert "no diagnostics" in output_of(out)

    def test_lint_engine_runs_protocol_pass(self, shell):
        sh, out, _tmp = shell
        sh.run_line("\\lint engine")
        assert "engine protocol: clean" in output_of(out)

    def test_semantic_error_renders_with_caret(self, shell):
        sh, out, _tmp = shell
        sh.run(["\\c t"])
        sh.sdb.load("t", [{"a": 1}])
        sh.run_line("SELECT frobnicate(a) FROM t")
        text = output_of(out)
        assert "SNW104" in text
        assert "^" in text

    def test_warning_printed_after_rows(self, shell):
        sh, out, _tmp = shell
        sh.run(["\\c t"])
        sh.sdb.load("t", [{"a": 1}])
        sh.run_line("SELECT missing_key FROM t")
        text = output_of(out)
        assert "(1 rows)" in text
        assert "SNW201" in text

    def test_check_clean_table(self, shell):
        sh, out, _tmp = shell
        sh.run(["\\c t"])
        sh.sdb.load("t", [{"a": 1}])
        sh.run_line("\\check")
        assert "check 't': 1 row(s) scanned, ok" in output_of(out)

    def test_check_reports_seeded_corruption(self, shell):
        sh, out, _tmp = shell
        sh.run(["\\c t"])
        sh.sdb.load("t", [{"a": 1}, {"a": 2}])
        sh.sdb.catalog.table("t").n_documents += 3
        sh.run_line("\\check t")
        text = output_of(out)
        assert "SNW305" in text

    def test_check_without_collections(self, shell):
        sh, out, _tmp = shell
        sh.run_line("\\check")
        assert "no collections to check" in output_of(out)
