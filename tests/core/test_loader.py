"""Unit tests for the Sinew bulk loader."""

import pytest

from repro.core import serializer
from repro.core.catalog import SinewCatalog
from repro.core.loader import ID_COLUMN, RESERVOIR_COLUMN, SinewLoader
from repro.rdbms.database import Database
from repro.rdbms.errors import ConcurrencyError
from repro.rdbms.types import SqlType


@pytest.fixture()
def env():
    db = Database("load")
    db.create_table(
        "t", [(ID_COLUMN, SqlType.INTEGER), (RESERVOIR_COLUMN, SqlType.BYTEA)]
    )
    catalog = SinewCatalog()
    return db, catalog, SinewLoader(db, catalog)


class TestSerializeDocument:
    def test_nested_keys_use_full_dotted_names(self, env):
        _db, catalog, loader = env
        data = loader.serialize_document({"user": {"id": 7}})
        parent = catalog.lookup_id("user", SqlType.BYTEA)
        child = catalog.lookup_id("user.id", SqlType.INTEGER)
        assert parent is not None and child is not None
        sub = serializer.extract(data, parent, SqlType.BYTEA)
        assert serializer.extract(sub, child, SqlType.INTEGER) == 7

    def test_null_means_absent(self, env):
        _db, catalog, loader = env
        data = loader.serialize_document({"a": None, "b": 1})
        assert serializer.attribute_count(data) == 1

    def test_array_of_objects(self, env):
        _db, catalog, loader = env
        data = loader.serialize_document({"items": [{"x": 1}, {"x": 2}]})
        attr = catalog.lookup_id("items", SqlType.ARRAY)
        elements = serializer.extract(data, attr, SqlType.ARRAY)
        assert len(elements) == 2
        assert all(isinstance(e, bytes) for e in elements)


class TestLoad:
    def test_rows_land_in_reservoir_only(self, env):
        db, catalog, loader = env
        report = loader.load("t", [{"a": 1}, {"a": 2, "b": "x"}])
        assert report.n_documents == 2
        table = db.table("t")
        for _rid, row in table.scan():
            assert row[0] in (0, 1)  # _id assigned sequentially
            assert isinstance(row[1], bytes)

    def test_catalog_counts(self, env):
        _db, catalog, loader = env
        loader.load("t", [{"a": 1}, {"a": 2, "b": "x"}, {"b": "y"}])
        table = catalog.table("t")
        a_id = catalog.lookup_id("a", SqlType.INTEGER)
        b_id = catalog.lookup_id("b", SqlType.TEXT)
        assert table.state(a_id).count == 2
        assert table.state(b_id).count == 2
        assert table.n_documents == 3

    def test_new_attribute_count_in_report(self, env):
        _db, _catalog, loader = env
        first = loader.load("t", [{"a": 1}])
        assert first.new_attributes == 1
        second = loader.load("t", [{"a": 2}])
        assert second.new_attributes == 0

    def test_incremental_ids(self, env):
        db, _catalog, loader = env
        loader.load("t", [{"a": 1}])
        loader.load("t", [{"a": 2}])
        ids = [row[0] for _rid, row in db.table("t").scan()]
        assert ids == [0, 1]

    def test_load_marks_materialized_columns_dirty(self, env):
        _db, catalog, loader = env
        loader.load("t", [{"a": 1}])
        a_id = catalog.lookup_id("a", SqlType.INTEGER)
        state = catalog.table("t").state(a_id)
        state.materialized = True
        state.dirty = False
        report = loader.load("t", [{"a": 2}])
        assert state.dirty is True
        assert "a" in report.dirtied_columns

    def test_json_strings_accepted(self, env):
        _db, _catalog, loader = env
        report = loader.load("t", ['{"a": 1}', '{"a": 2}'])
        assert report.n_documents == 2

    def test_loader_respects_latch(self, env):
        _db, catalog, loader = env
        loader.latch_timeout = 0.05  # wait (bounded), then a clear error
        with catalog.exclusive_latch("materializer"):
            with pytest.raises(ConcurrencyError, match="timed out"):
                loader.load("t", [{"a": 1}])
        assert catalog.latch_stats.timeouts == 1
        # latch free again: the same load goes through
        assert loader.load("t", [{"a": 1}]).n_documents == 1

    def test_multi_typed_key_registers_two_attributes(self, env):
        _db, catalog, loader = env
        loader.load("t", [{"dyn": 1}, {"dyn": "x"}])
        assert len(catalog.attributes_named("dyn")) == 2
