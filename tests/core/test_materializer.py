"""Unit tests for the incremental column materializer."""

import pytest

from repro.core import SinewDB
from repro.rdbms.errors import ConcurrencyError
from repro.rdbms.types import SqlType

N_DOCS = 200


@pytest.fixture()
def sdb():
    instance = SinewDB("mat")
    instance.create_collection("t")
    instance.load(
        "t",
        [
            {"k": f"v{i}", "n": i, "user": {"id": i}, "sparse": i}
            if i % 2 == 0
            else {"k": f"v{i}", "n": i, "user": {"id": i}}
            for i in range(N_DOCS)
        ],
    )
    return instance


class TestFullMaterialization:
    def test_column_appears_and_values_move(self, sdb):
        sdb.materialize("t", "k", SqlType.TEXT)
        report = sdb.run_materializer("t")
        assert "k" in report.columns_completed
        assert report.rows_moved == N_DOCS
        table = sdb.db.table("t")
        assert "k" in table.schema
        position = table.schema.position_of("k")
        values = [row[position] for _rid, row in table.scan()]
        assert values == [f"v{i}" for i in range(N_DOCS)]

    def test_values_removed_from_reservoir(self, sdb):
        sdb.materialize("t", "k", SqlType.TEXT)
        sdb.run_materializer("t")
        table = sdb.db.table("t")
        data_position = table.schema.position_of("data")
        for _rid, row in table.scan():
            assert sdb.extractor.extract_text(row[data_position], "k") is None

    def test_sparse_column_moves_only_present_values(self, sdb):
        sdb.materialize("t", "sparse", SqlType.INTEGER)
        report = sdb.run_materializer("t")
        assert report.rows_moved == N_DOCS // 2
        result = sdb.query("SELECT count(*) FROM t WHERE sparse IS NOT NULL")
        assert result.scalar() == N_DOCS // 2

    def test_dirty_flag_cleared(self, sdb):
        sdb.materialize("t", "n", SqlType.INTEGER)
        assert sdb.materializer.pending("t")
        sdb.run_materializer("t")
        assert not sdb.materializer.pending("t")

    def test_queries_identical_before_and_after(self, sdb):
        before = sdb.query("SELECT k FROM t WHERE n = 7").rows
        sdb.materialize("t", "k", SqlType.TEXT)
        sdb.materialize("t", "n", SqlType.INTEGER)
        sdb.run_materializer("t")
        after = sdb.query("SELECT k FROM t WHERE n = 7").rows
        assert before == after == [("v7",)]


class TestIncrementalMaterialization:
    def test_step_is_bounded(self, sdb):
        sdb.materialize("t", "k", SqlType.TEXT)
        report = sdb.materializer_step("t", max_rows=50)
        assert report.rows_examined == 50
        assert report.columns_completed == []
        assert sdb.materializer.pending("t")  # still dirty

    def test_query_during_partial_move_sees_all_rows(self, sdb):
        sdb.materialize("t", "k", SqlType.TEXT)
        sdb.materializer_step("t", max_rows=N_DOCS // 2)
        # half the values are physical, half still in the reservoir: the
        # COALESCE rewrite must see every row (section 3.1.4)
        result = sdb.query("SELECT count(*) FROM t WHERE k IS NOT NULL")
        assert result.scalar() == N_DOCS
        point = sdb.query(f"SELECT n FROM t WHERE k = 'v{N_DOCS - 1}'")
        assert point.rows == [(N_DOCS - 1,)]

    def test_resumes_where_it_stopped(self, sdb):
        sdb.materialize("t", "k", SqlType.TEXT)
        sdb.materializer_step("t", max_rows=60)
        sdb.materializer_step("t", max_rows=60)
        report = sdb.materializer_step("t", max_rows=N_DOCS)
        assert "k" in report.columns_completed
        total_moved = N_DOCS  # every row had k
        table = sdb.db.table("t")
        position = table.schema.position_of("k")
        assert sum(1 for _r, row in table.scan() if row[position] is not None) == (
            total_moved
        )

    def test_explain_shows_coalesce_while_dirty(self, sdb):
        sdb.materialize("t", "k", SqlType.TEXT)
        sdb.materializer_step("t", max_rows=10)
        plan = sdb.explain("SELECT k FROM t")
        assert "COALESCE" in plan or "Coalesce" in plan

    def test_load_after_materialization_re_dirties(self, sdb):
        sdb.materialize("t", "k", SqlType.TEXT)
        sdb.run_materializer("t")
        assert not sdb.materializer.pending("t")
        sdb.load("t", [{"k": "fresh", "n": 999}])
        pending = sdb.materializer.pending("t")
        assert pending
        sdb.run_materializer("t")
        result = sdb.query("SELECT n FROM t WHERE k = 'fresh'")
        assert result.rows == [(999,)]


class TestDematerialization:
    def test_column_dropped_and_values_back_in_reservoir(self, sdb):
        sdb.materialize("t", "k", SqlType.TEXT)
        sdb.run_materializer("t")
        sdb.dematerialize("t", "k", SqlType.TEXT)
        report = sdb.run_materializer("t")
        assert "k" in report.columns_completed
        assert "k" not in sdb.db.table("t").schema
        assert sdb.query("SELECT k FROM t WHERE n = 3").rows == [("v3",)]

    def test_roundtrip_preserves_documents(self, sdb):
        baseline = [doc for _id, doc in sdb.documents("t")]
        sdb.materialize("t", "k", SqlType.TEXT)
        sdb.materialize("t", "user", SqlType.BYTEA)
        sdb.run_materializer("t")
        sdb.dematerialize("t", "k", SqlType.TEXT)
        sdb.dematerialize("t", "user", SqlType.BYTEA)
        sdb.run_materializer("t")
        assert [doc for _id, doc in sdb.documents("t")] == baseline


class TestNestedMaterialization:
    def test_materialize_nested_object_column(self, sdb):
        sdb.materialize("t", "user", SqlType.BYTEA)
        sdb.run_materializer("t")
        # sub-key extraction must now route through the physical column
        result = sdb.query('SELECT "user.id" FROM t WHERE n = 5')
        assert result.rows == [(5,)]
        plan = sdb.explain('SELECT "user.id" FROM t')
        assert "user" in plan and "data" not in plan.split("Seq Scan")[0]

    def test_materialize_dotted_key_directly(self, sdb):
        sdb.materialize("t", "user.id", SqlType.INTEGER)
        sdb.run_materializer("t")
        table = sdb.db.table("t")
        assert "user.id" in table.schema
        result = sdb.query('SELECT "user.id" FROM t WHERE n = 9')
        assert result.rows == [(9,)]

    def test_materialize_child_after_parent(self, sdb):
        # the child value lives in the parent's physical cell by then, so
        # the mover must source from there instead of the reservoir
        truth = [doc for _id, doc in sdb.documents("t")]
        sdb.materialize("t", "user", SqlType.BYTEA)
        sdb.run_materializer("t")
        sdb.materialize("t", "user.id", SqlType.INTEGER)
        report = sdb.run_materializer("t")
        assert report.rows_moved == N_DOCS
        result = sdb.query('SELECT "user.id" FROM t WHERE n = 9')
        assert result.rows == [(9,)]
        assert not any(report.findings for report in sdb.check("t"))
        assert [doc for _id, doc in sdb.documents("t")] == truth

    def test_child_query_correct_while_move_from_parent_cell_in_flight(self, sdb):
        sdb.materialize("t", "user", SqlType.BYTEA)
        sdb.run_materializer("t")
        sdb.materialize("t", "user.id", SqlType.INTEGER)
        expected = sorted(range(N_DOCS))
        while sdb.materializer.pending("t"):
            sdb.materializer_step("t", max_rows=7)
            rows = sdb.query('SELECT "user.id" FROM t').column(0)
            assert sorted(rows) == expected

    def test_dematerialize_child_returns_value_to_parent_cell(self, sdb):
        sdb.materialize("t", "user", SqlType.BYTEA)
        sdb.run_materializer("t")
        sdb.materialize("t", "user.id", SqlType.INTEGER)
        sdb.run_materializer("t")
        sdb.dematerialize("t", "user.id", SqlType.INTEGER)
        report = sdb.run_materializer("t")
        assert report.rows_moved == N_DOCS
        assert "user.id" not in sdb.db.table("t").schema
        result = sdb.query('SELECT "user.id" FROM t WHERE n = 9')
        assert result.rows == [(9,)]
        assert not any(report.findings for report in sdb.check("t"))
        assert [doc for _id, doc in sdb.documents("t")] == [
            doc for doc in ({"k": f"v{i}", "n": i, "user": {"id": i}, "sparse": i}
                            if i % 2 == 0
                            else {"k": f"v{i}", "n": i, "user": {"id": i}}
                            for i in range(N_DOCS))
        ]


class TestLatchInteraction:
    def test_materializer_blocked_by_loader_latch(self, sdb):
        sdb.materialize("t", "k", SqlType.TEXT)
        sdb.materializer.latch_timeout = 0.05
        with sdb.catalog.exclusive_latch("loader"):
            with pytest.raises(ConcurrencyError, match="timed out"):
                sdb.materializer_step("t")
        # fail-fast mode still available for exclusion checks
        sdb.materializer.latch_blocking = False
        with sdb.catalog.exclusive_latch("loader"):
            with pytest.raises(ConcurrencyError, match="must wait"):
                sdb.materializer_step("t")
