"""Concurrency stress: loader thread vs. daemon under injected crashes.

A foreground loader thread streams batches while the background daemon
materializes, with a *seeded* pseudo-random kill schedule armed across the
daemon/materializer/loader injection points.  A controller restarts the
daemon every time a kill lands (exercising :meth:`MaterializerDaemon.recover`
end to end).  At the end:

* ``SinewDB.check()`` reports no errors,
* every confirmed batch is present exactly once (row counts match), and
* SQL answers equal the storage-level ground truth.

Deterministic per seed; run with ``pytest -m slow``.
"""

import threading
import time

import pytest

from repro.core import SinewConfig, SinewDB
from repro.rdbms.types import SqlType
from repro.testing import disable_latch_tracking, enable_latch_tracking
from repro.testing.faults import FaultInjector, InjectedFault

pytestmark = pytest.mark.slow


@pytest.fixture(autouse=True)
def _latch_tracking():
    """Run the whole stress schedule under the latch-order detector.

    Any latch-order inversion or blocking self-re-acquire raises inside
    the offending thread (failing the test through its error channel);
    the post-run assert catches violations a thread might have swallowed.
    """
    tracker = enable_latch_tracking()
    try:
        yield tracker
    finally:
        disable_latch_tracking()
    assert tracker.violations == []

BATCHES = 24
BATCH_SIZE = 8

#: kill points for the seeded schedule.  ``loader.after_insert`` is armed
#: too: its rows land *before* the fault, which the loader must account for.
POOL = [
    "daemon.before_step",
    "daemon.after_step",
    "materializer.before_step",
    "materializer.before_row_move",
    "materializer.after_row_move",
    "materializer.before_clear_dirty",
    "loader.before_insert",
    "loader.after_insert",
]


def _batch(index):
    return [
        {"uid": index * BATCH_SIZE + i, "tag": f"b{index}", "n": i}
        for i in range(BATCH_SIZE)
    ]


class _Loader(threading.Thread):
    """Streams batches; retries batches whose insert provably rolled back."""

    def __init__(self, sdb):
        super().__init__(name="stress-loader")
        self.sdb = sdb
        self.confirmed = []  # uids that are durably in the heap
        self.errors = []

    def run(self):
        try:
            for index in range(BATCHES):
                batch = _batch(index)
                for _attempt in range(4):
                    try:
                        self.sdb.load("t", batch)
                    except InjectedFault as fault:
                        if fault.point == "loader.after_insert":
                            # the heap write completed before the fault
                            self.confirmed.extend(d["uid"] for d in batch)
                            break
                        continue  # rolled back: retry the same batch
                    else:
                        self.confirmed.extend(d["uid"] for d in batch)
                        break
                time.sleep(0.001)
        except BaseException as error:  # pragma: no cover - surfaced below
            self.errors.append(error)


@pytest.mark.parametrize("seed", [11, 1234, 987654])
def test_loader_and_daemon_survive_seeded_kill_schedule(seed):
    sdb = SinewDB(
        f"stress{seed}",
        SinewConfig(daemon_step_rows=5, daemon_idle_sleep=0.001),
    )
    sdb.create_collection("t")
    sdb.load("t", _batch(999))  # settled baseline rows (uids >= 7992)
    sdb.materialize("t", "uid", SqlType.INTEGER)
    sdb.materialize("t", "tag", SqlType.TEXT)
    sdb.run_materializer("t")

    injector = FaultInjector()
    sdb.attach_faults(injector)
    injector.schedule_from_seed(seed, POOL, n_faults=8, max_at=40)

    loader = _Loader(sdb)
    sdb.start_daemon()
    loader.start()

    restarts = 0
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if sdb.daemon.state == "crashed" and not sdb.daemon.is_alive():
            restarts += 1
            sdb.start_daemon()  # runs recover() first
        if not loader.is_alive() and not sdb.daemon.backlog():
            break
        time.sleep(0.005)
    loader.join(10)
    assert not loader.is_alive(), "loader thread hung"
    assert not loader.errors, loader.errors
    # final drain: keep restarting until the backlog empties (late kills
    # from the schedule may still land here)
    drain_deadline = time.monotonic() + 30
    while not sdb.daemon.wait_until_idle(20.0):
        assert sdb.daemon.state == "crashed", "backlog stuck without a crash"
        assert time.monotonic() < drain_deadline, "drain never converged"
        sdb.start_daemon()
        restarts += 1
    sdb.stop_daemon()

    # -- invariants -----------------------------------------------------
    for report in sdb.check():
        assert not report.errors, [str(f) for f in report.errors]
    assert not sdb.catalog.table("t").dirty_columns()
    assert sdb.daemon.recoveries == restarts

    truth = sorted(doc["uid"] for _id, doc in sdb.documents("t"))
    assert len(truth) == len(set(truth)), "duplicate rows after retries"
    confirmed = sorted(loader.confirmed)
    assert set(confirmed) <= set(truth), "confirmed batch lost"
    baseline_uids = {d["uid"] for d in _batch(999)}
    issued = {d["uid"] for i in range(BATCHES) for d in _batch(i)}
    assert set(truth) <= issued | baseline_uids, "unknown rows appeared"

    via_sql = sorted(
        row[0] for row in sdb.query("SELECT uid FROM t").rows
    )
    assert via_sql == truth, "SQL answers diverge from storage ground truth"
