"""Unit tests for the query rewriter (logical -> physical SQL)."""

import pytest

from repro.core import SinewDB
from repro.core.rewriter import QueryRewriter
from repro.rdbms.errors import PlanningError
from repro.rdbms.expressions import (
    Between,
    BinaryOp,
    Coalesce,
    ColumnRef,
    FunctionCall,
    Literal,
)
from repro.rdbms.sql.parser import parse
from repro.rdbms.types import SqlType


@pytest.fixture()
def sdb():
    instance = SinewDB("rw")
    instance.create_collection("t")
    instance.load(
        "t",
        [
            {
                "phys": f"p{i}",
                "virt": f"v{i}",
                "n": i,
                "dyn": i if i % 2 else f"s{i}",
                "user": {"lang": "en"},
                "tags": ["a", "b"],
                "flag": True,
            }
            for i in range(300)
        ],
    )
    instance.materialize("t", "phys", SqlType.TEXT)
    instance.run_materializer("t")
    return instance


def rewritten_items(sdb, sql):
    statement = parse(sql)
    return sdb._rewriter().rewrite_select(statement).items


def rewritten_where(sdb, sql):
    statement = parse(sql)
    return sdb._rewriter().rewrite_select(statement).where


class TestColumnResolution:
    def test_clean_physical_passes_through(self, sdb):
        items = rewritten_items(sdb, "SELECT phys FROM t")
        assert items[0].expr == ColumnRef("t", "phys")

    def test_virtual_becomes_extraction(self, sdb):
        items = rewritten_items(sdb, "SELECT virt FROM t")
        expr = items[0].expr
        assert isinstance(expr, FunctionCall)
        assert expr.name == "extract_key_text"
        assert expr.args == (ColumnRef("t", "data"), Literal("virt"))
        # output keeps the logical name
        assert items[0].alias == "virt"

    def test_dirty_column_coalesces(self, sdb):
        sdb.materialize("t", "virt", SqlType.TEXT)
        sdb.materializer_step("t", max_rows=10)
        items = rewritten_items(sdb, "SELECT virt FROM t")
        expr = items[0].expr
        assert isinstance(expr, Coalesce)
        assert isinstance(expr.args[0], ColumnRef)
        assert isinstance(expr.args[1], FunctionCall)

    def test_id_and_data_are_direct(self, sdb):
        items = rewritten_items(sdb, "SELECT _id FROM t")
        assert items[0].expr == ColumnRef("t", "_id")

    def test_unknown_key_still_extracts(self, sdb):
        items = rewritten_items(sdb, "SELECT never_seen FROM t")
        assert isinstance(items[0].expr, FunctionCall)

    def test_qualified_reference(self, sdb):
        items = rewritten_items(sdb, "SELECT x.virt FROM t x")
        expr = items[0].expr
        assert expr.args[0] == ColumnRef("x", "data")


class TestTypeContexts:
    def test_numeric_literal_selects_numeric_extraction(self, sdb):
        where = rewritten_where(sdb, "SELECT _id FROM t WHERE dyn > 5")
        assert isinstance(where, BinaryOp)
        assert where.left.name == "extract_key_num"

    def test_string_literal_selects_text_extraction(self, sdb):
        where = rewritten_where(sdb, "SELECT _id FROM t WHERE dyn = 'x'")
        assert where.left.name == "extract_key_text"

    def test_between_numeric(self, sdb):
        where = rewritten_where(sdb, "SELECT _id FROM t WHERE dyn BETWEEN 1 AND 5")
        assert isinstance(where, Between)
        assert where.operand.name == "extract_key_num"

    def test_like_selects_text(self, sdb):
        where = rewritten_where(sdb, "SELECT _id FROM t WHERE dyn LIKE 'a%'")
        assert where.operand.name == "extract_key_text"

    def test_single_typed_key_uses_dominant_type(self, sdb):
        items = rewritten_items(sdb, "SELECT n FROM t")
        assert items[0].expr.name == "extract_key_num"

    def test_multi_typed_key_projection_downcasts(self, sdb):
        items = rewritten_items(sdb, "SELECT dyn FROM t")
        assert items[0].expr.name == "extract_key_any"

    def test_any_predicate_array_extraction(self, sdb):
        where = rewritten_where(sdb, "SELECT _id FROM t WHERE 'a' = ANY(tags)")
        assert where.haystack.name == "extract_key_array"

    def test_aggregate_argument_numeric(self, sdb):
        items = rewritten_items(sdb, "SELECT sum(n) FROM t")
        call = items[0].expr
        assert call.args[0].name == "extract_key_num"

    def test_boolean_dominant_type(self, sdb):
        items = rewritten_items(sdb, "SELECT flag FROM t")
        assert items[0].expr.name == "extract_key_bool"


class TestNestedRouting:
    def test_dotted_key_from_reservoir(self, sdb):
        items = rewritten_items(sdb, 'SELECT "user.lang" FROM t')
        expr = items[0].expr
        assert expr.args[0] == ColumnRef("t", "data")
        assert expr.args[1] == Literal("user.lang")

    def test_dotted_key_from_materialized_parent(self, sdb):
        sdb.materialize("t", "user", SqlType.BYTEA)
        sdb.run_materializer("t")
        items = rewritten_items(sdb, 'SELECT "user.lang" FROM t')
        expr = items[0].expr
        assert expr.args[0] == ColumnRef("t", "user")

    def test_dotted_key_dirty_parent_coalesces(self, sdb):
        sdb.materialize("t", "user", SqlType.BYTEA)
        sdb.materializer_step("t", max_rows=5)
        items = rewritten_items(sdb, 'SELECT "user.lang" FROM t')
        assert isinstance(items[0].expr, Coalesce)


class TestJoinsAndMatches:
    def test_join_of_two_sinew_tables(self, sdb):
        sdb.create_collection("u")
        sdb.load("u", [{"virt": f"v{i}"} for i in range(10)])
        statement = parse("SELECT a._id FROM t a, u b WHERE a.virt = b.virt")
        rewritten = sdb._rewriter().rewrite_select(statement)
        left = rewritten.where.left
        right = rewritten.where.right
        assert left.args[0] == ColumnRef("a", "data")
        assert right.args[0] == ColumnRef("b", "data")

    def test_matches_rewrites_to_index_probe(self, sdb):
        statement = parse("SELECT _id FROM t WHERE matches('*', 'hello')")
        rewritten = sdb._rewriter().rewrite_select(statement)
        call = rewritten.where
        assert call.name == "sinew_matches"
        assert call.args[0] == ColumnRef("t", "_id")

    def test_matches_arity_checked(self, sdb):
        statement = parse("SELECT _id FROM t WHERE matches('x')")
        with pytest.raises(PlanningError):
            sdb._rewriter().rewrite_select(statement)

    def test_ambiguous_unqualified_key(self, sdb):
        sdb.create_collection("u")
        sdb.load("u", [{"virt": "x"}])
        statement = parse("SELECT virt FROM t, u")
        with pytest.raises(PlanningError, match="ambiguous"):
            sdb._rewriter().rewrite_select(statement)


class TestOtherStatements:
    def test_update_where_rewritten(self, sdb):
        statement = parse("UPDATE t SET virt = 'z' WHERE n = 3")
        where = sdb._rewriter().rewrite_where(statement)
        assert where.left.name == "extract_key_num"

    def test_group_by_and_order_by_rewritten(self, sdb):
        statement = parse(
            "SELECT virt, count(*) FROM t GROUP BY virt ORDER BY virt"
        )
        rewritten = sdb._rewriter().rewrite_select(statement)
        assert isinstance(rewritten.group_by[0], FunctionCall)
        assert isinstance(rewritten.order_by[0].expr, FunctionCall)


class TestMultiTypedNullSemantics:
    """Execution-level NULL behaviour of multi-typed keys (section 3.2.2).

    ``dyn`` holds an integer on odd ``_id`` rows and a string on even
    ones: a typed extraction returns NULL for rows of the other type, so
    predicates silently select only the type-compatible subset -- the
    behaviour the Postgres JSON baseline cannot express.
    """

    def test_numeric_context_selects_only_numeric_rows(self, sdb):
        # dyn is an integer exactly on odd n
        rows = sdb.query("SELECT n FROM t WHERE dyn >= 0").rows
        assert len(rows) == 150
        assert all(value % 2 == 1 for (value,) in rows)

    def test_text_context_selects_only_text_rows(self, sdb):
        rows = sdb.query("SELECT dyn FROM t WHERE dyn LIKE 's%'").rows
        assert len(rows) == 150
        assert all(isinstance(value, str) for (value,) in rows)

    def test_text_equality_finds_single_row(self, sdb):
        rows = sdb.query("SELECT n FROM t WHERE dyn = 's2'").rows
        assert rows == [(2,)]

    def test_numeric_and_text_subsets_partition_the_table(self, sdb):
        numeric = sdb.query("SELECT _id FROM t WHERE dyn >= 0").rows
        text = sdb.query("SELECT _id FROM t WHERE dyn LIKE '%'").rows
        assert len(numeric) + len(text) == 300
        assert not set(numeric) & set(text)

    def test_is_null_sees_extract_key_any(self, sdb):
        # every row has *some* dyn value, so the untyped extraction is
        # never NULL even though each typed extraction is NULL somewhere
        rows = sdb.query("SELECT _id FROM t WHERE dyn IS NULL").rows
        assert rows == []

    def test_bare_projection_downcasts_to_text(self, sdb):
        values = sdb.query("SELECT dyn FROM t").column(0)
        assert len(values) == 300
        assert all(isinstance(value, str) for value in values)

    def test_dominant_type_is_per_table_not_global(self, sdb):
        # the global dictionary knows k as both int and text (one per
        # collection), but each table's dominant type only counts its own
        # occurrences, so neither projection falls back to extract_key_any
        sdb.create_collection("mono")
        sdb.load("mono", [{"k": 1}, {"k": 2}])
        sdb.create_collection("other")
        sdb.load("other", [{"k": "text"}])
        items = rewritten_items(sdb, "SELECT k FROM mono")
        assert items[0].expr.name == "extract_key_num"
        items = rewritten_items(sdb, "SELECT k FROM other")
        assert items[0].expr.name == "extract_key_text"
        # text context on the all-integer table extracts NULL on every row
        assert sdb.query("SELECT k FROM mono WHERE k LIKE '%'").rows == []
