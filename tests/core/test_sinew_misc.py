"""Additional SinewDB facade edge cases."""

import pytest

from repro.core import SinewDB
from repro.rdbms.errors import CatalogError, SqlSyntaxError
from repro.rdbms.types import SqlType


@pytest.fixture()
def sdb():
    instance = SinewDB("misc")
    instance.create_collection("t")
    instance.load("t", [{"a": i, "b": f"s{i}", "flag": i % 2 == 0} for i in range(20)])
    return instance


class TestQueryEntryPoints:
    def test_execute_accepts_select(self, sdb):
        result = sdb.execute("SELECT count(*) FROM t")
        assert result.scalar() == 20

    def test_query_routes_dml(self, sdb):
        result = sdb.query("UPDATE t SET b = 'x' WHERE a = 1")
        assert result.rowcount == 1

    def test_syntax_error_propagates(self, sdb):
        with pytest.raises(SqlSyntaxError):
            sdb.query("SELEKT a FROM t")

    def test_query_against_plain_rdbms_table(self, sdb):
        sdb.db.execute("CREATE TABLE plain (x integer)")
        sdb.db.execute("INSERT INTO plain VALUES (1), (2)")
        result = sdb.query("SELECT x FROM plain ORDER BY x")
        assert result.column(0) == [1, 2]

    def test_limit_and_order(self, sdb):
        result = sdb.query("SELECT a FROM t ORDER BY a DESC LIMIT 3")
        assert result.column(0) == [19, 18, 17]

    def test_distinct_on_virtual(self, sdb):
        result = sdb.query("SELECT DISTINCT flag FROM t")
        assert sorted(result.column(0)) == [False, True]


class TestCollectionLifecycle:
    def test_recreate_after_drop(self, sdb):
        sdb.drop_collection("t")
        sdb.create_collection("t")
        assert sdb.query("SELECT count(*) FROM t").scalar() == 0

    def test_materialize_unknown_attribute(self, sdb):
        with pytest.raises(CatalogError):
            sdb.materialize("t", "ghost", SqlType.TEXT)

    def test_materialize_idempotent(self, sdb):
        sdb.materialize("t", "a", SqlType.INTEGER)
        sdb.materialize("t", "a", SqlType.INTEGER)  # no error, no double state
        sdb.run_materializer("t")
        assert sdb.query("SELECT count(*) FROM t WHERE a >= 0").scalar() == 20

    def test_dematerialize_virtual_is_noop(self, sdb):
        sdb.dematerialize("t", "a", SqlType.INTEGER)
        assert not sdb.materializer.pending("t")

    def test_storage_bytes_positive(self, sdb):
        assert sdb.storage_bytes("t") > 0


class TestDelete:
    def test_delete_with_virtual_predicate(self, sdb):
        result = sdb.execute("DELETE FROM t WHERE flag = true")
        assert result.rowcount == 10
        assert sdb.query("SELECT count(*) FROM t").scalar() == 10

    def test_delete_after_materialization(self, sdb):
        sdb.materialize("t", "a", SqlType.INTEGER)
        sdb.run_materializer("t")
        sdb.execute("DELETE FROM t WHERE a < 5")
        assert sdb.query("SELECT count(*) FROM t").scalar() == 15


class TestMaterializerWithDeletedRows:
    def test_materializer_skips_dead_rows(self, sdb):
        sdb.execute("DELETE FROM t WHERE a = 3")
        sdb.materialize("t", "b", SqlType.TEXT)
        report = sdb.run_materializer("t")
        assert report.rows_moved == 19
        assert sdb.query("SELECT count(*) FROM t WHERE b IS NOT NULL").scalar() == 19


class TestMultiCollection:
    def test_same_key_different_collections_independent(self, sdb):
        sdb.create_collection("u")
        sdb.load("u", [{"a": 100 + i} for i in range(5)])
        sdb.materialize("u", "a", SqlType.INTEGER)
        sdb.run_materializer("u")
        # 't' keeps its virtual 'a'; 'u' has it physical
        assert "a" not in sdb.db.table("t").schema
        assert "a" in sdb.db.table("u").schema
        assert sdb.query("SELECT min(a) FROM u").scalar() == 100
        assert sdb.query("SELECT min(a) FROM t").scalar() == 0

    def test_cross_collection_join(self, sdb):
        sdb.create_collection("v")
        sdb.load("v", [{"a": i, "extra": f"e{i}"} for i in range(5)])
        result = sdb.query(
            "SELECT x.extra FROM t w, v x WHERE w.a = x.a AND w.a < 2"
        )
        assert sorted(result.column(0)) == ["e0", "e1"]
