"""Property-based round-trip tests for the section 4.1 serialization format.

For *arbitrary* nested documents the reservoir encoding must satisfy:

* ``to_dict(serialize(doc)) == strip_nulls(doc)`` -- whole-document
  reconstruction loses nothing but JSON nulls (null == key absence in the
  sparse model, Section 4.1);
* every flattened dot-path extracts to exactly the source value through
  the catalog-typed :meth:`ReservoirExtractor.extract_typed` path.

Runs in the stress lane (``pytest -m slow``); CI pins the derandomized
``ci`` hypothesis profile so failures replay deterministically.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import example, given, settings, strategies as st

from repro.core.catalog import SinewCatalog
from repro.core.document import flatten, infer_sql_type
from repro.core.extractors import ReservoirExtractor
from repro.core.loader import SinewLoader
from repro.rdbms.types import SqlType

pytestmark = pytest.mark.slow

# Keys: non-empty, no dots (a dot is the path separator of the logical
# schema), no surrogates (must round-trip through UTF-8).
KEYS = st.text(
    st.characters(blacklist_characters=".", blacklist_categories=("Cs",)),
    min_size=1,
    max_size=12,
)

SCALARS = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**62), max_value=2**62)  # fits the I64 wire format
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(st.characters(blacklist_categories=("Cs",)), max_size=24)
)

VALUES = st.recursive(
    SCALARS,
    lambda children: (
        st.lists(children, max_size=4)
        | st.dictionaries(KEYS, children, max_size=4)
    ),
    max_leaves=20,
)

DOCUMENTS = st.dictionaries(KEYS, VALUES, max_size=6)


def strip_nulls(value):
    """The loader's normal form: dicts drop null members at every level
    (absence semantics); arrays keep null *elements* (positions matter)."""
    if isinstance(value, dict):
        return {k: strip_nulls(v) for k, v in value.items() if v is not None}
    if isinstance(value, list):
        return [strip_nulls(v) for v in value]
    return value


def fresh_pair():
    catalog = SinewCatalog()
    loader = SinewLoader.__new__(SinewLoader)
    loader.catalog = catalog
    loader.faults = None
    return loader, ReservoirExtractor(catalog)


@given(doc=DOCUMENTS)
@example(doc={})
@example(doc={"empty": {}})
@example(doc={"a": {"b": {"c": {"d": {"e": 1}}}}})
@example(doc={"ключ": {"日本語": "значение", "emoji🎈": True}})
@example(doc={"n": None, "nested": {"n": None, "keep": 0}})
@example(doc={"mixed": [1, "two", None, 3.5, [True, {}], {"k": "v"}]})
@example(doc={"x": -(2**62), "y": 2**62, "z": 0.1})
@example(doc={"same": 1, "Same": "1", "SAME": True})
@settings(max_examples=200)
def test_document_roundtrip_via_to_dict(doc):
    loader, extractor = fresh_pair()
    data = loader.serialize_document(doc)
    assert extractor.to_dict(data) == strip_nulls(doc)


@given(doc=DOCUMENTS)
@example(doc={"user": {"id": 7, "tags": ["a", "b"]}, "ok": True})
@example(doc={"deep": {"er": {"est": 2.25}}})
@settings(max_examples=200)
def test_every_dot_path_extracts_to_source_value(doc):
    loader, extractor = fresh_pair()
    normalized = strip_nulls(doc)
    data = loader.serialize_document(doc)
    for path, value in flatten(normalized):
        sql_type = infer_sql_type(value)
        extracted = extractor.extract_typed(data, path, sql_type)
        if sql_type is SqlType.BYTEA:
            # nested documents come back serialized; compare reconstructed
            assert extractor.to_dict(extracted, prefix=path + ".") == value
        elif sql_type is SqlType.ARRAY:
            assert (
                extractor._array_to_plain(extracted, prefix=path + ".")
                == value
            )
        else:
            assert extracted == value
            assert type(extracted) is type(value)


@given(doc=DOCUMENTS)
@settings(max_examples=100)
def test_serialization_is_deterministic(doc):
    loader, _ = fresh_pair()
    assert loader.serialize_document(doc) == loader.serialize_document(doc)


@given(doc=DOCUMENTS)
@settings(max_examples=100)
def test_absent_keys_extract_to_none(doc):
    loader, extractor = fresh_pair()
    data = loader.serialize_document(doc)
    # a key that cannot collide with generated keys (contains a dot and a
    # character class the key strategy never emits is unnecessary -- the
    # catalog lookup simply misses)
    assert extractor.extract_typed(data, "\x00never\x00.here", SqlType.TEXT) is None
    assert not extractor.exists(data, "\x00never\x00")
