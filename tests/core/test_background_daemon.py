"""Background materializer daemon: lifecycle, concurrency, crash recovery.

The acceptance test of this suite (`TestKillEveryInjectionPoint`) kills the
system at **every** registered injection point in turn and proves that, in
every case:

* ``SinewDB.check()`` reports no SNW3xx *errors* (stale-high warnings are
  legal by design),
* queries over dirty columns still return correct results through the
  ``COALESCE(physical, extract_key(...))`` path, and
* restart + recovery converges to a clean, fully-settled state with the
  same query answers.
"""

import time

import pytest

from repro.core import SinewConfig, SinewDB
from repro.rdbms.errors import ConcurrencyError
from repro.rdbms.types import SqlType
from repro.testing.faults import FaultInjector, InjectedFault, known_points

#: The canonical injection points (tests may register extra ones, so the
#: acceptance matrix pins the production set explicitly).
CANONICAL_POINTS = (
    "loader.before_insert",
    "loader.after_insert",
    "materializer.before_step",
    "materializer.before_row_move",
    "materializer.after_row_move",
    "materializer.before_clear_dirty",
    "daemon.before_step",
    "daemon.after_step",
    "storage.write_row",
)

DOCS = [{"v": i, "w": f"w{i}", "extra": i % 3} for i in range(30)]
MORE = [{"v": 100 + i, "w": f"m{i}"} for i in range(5)]


def wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


def build_sdb():
    sdb = SinewDB(
        "bg", SinewConfig(daemon_step_rows=7, daemon_idle_sleep=0.002)
    )
    sdb.create_collection("t")
    sdb.load("t", DOCS)
    return sdb


def ground_truth(sdb):
    """(v, w) multiset reconstructed row by row from the storage layer."""
    return sorted(
        (doc.get("v"), doc.get("w")) for _id, doc in sdb.documents("t")
    )


def query_vw(sdb):
    """The same multiset through SQL (exercises the COALESCE rewrite)."""
    return sorted(sdb.query("SELECT v, w FROM t").rows)


def assert_no_check_errors(sdb):
    for report in sdb.check():
        assert not report.errors, [str(f) for f in report.errors]


class TestLifecycle:
    def test_daemon_materializes_in_background(self):
        sdb = build_sdb()
        sdb.materialize("t", "v", SqlType.INTEGER)
        sdb.start_daemon()
        try:
            assert sdb.daemon.wait_until_idle(10.0)
        finally:
            sdb.stop_daemon()
        assert sdb.daemon.state == "stopped"
        status = sdb.daemon.status()
        assert status.rows_moved == len(DOCS)
        assert status.steps >= 1
        assert status.columns_completed == 1
        assert status.last_error is None
        assert "v" in sdb.db.table("t").schema
        assert not sdb.catalog.table("t").dirty_columns()
        assert query_vw(sdb) == ground_truth(sdb)
        assert_no_check_errors(sdb)

    def test_start_twice_raises(self):
        sdb = build_sdb()
        sdb.start_daemon()
        try:
            with pytest.raises(ConcurrencyError, match="already running"):
                sdb.start_daemon()
        finally:
            sdb.stop_daemon()

    def test_pause_halts_progress_and_resume_continues(self):
        sdb = build_sdb()
        sdb.daemon.step_rows = 3
        sdb.materialize("t", "v", SqlType.INTEGER)
        sdb.daemon.pause()
        sdb.start_daemon()
        try:
            assert sdb.daemon.state == "paused"
            time.sleep(0.05)
            assert sdb.daemon.status().rows_moved == 0
            sdb.daemon.resume()
            assert sdb.daemon.wait_until_idle(10.0)
        finally:
            sdb.stop_daemon()
        assert sdb.daemon.status().rows_moved == len(DOCS)

    def test_daemon_picks_up_loads_while_running(self):
        sdb = build_sdb()
        sdb.materialize("t", "v", SqlType.INTEGER)
        sdb.start_daemon()
        try:
            assert sdb.daemon.wait_until_idle(10.0)
            sdb.load("t", MORE)  # dirties v again and kicks the daemon
            assert sdb.daemon.wait_until_idle(10.0)
        finally:
            sdb.stop_daemon()
        assert query_vw(sdb) == ground_truth(sdb)
        assert len(ground_truth(sdb)) == len(DOCS) + len(MORE)
        assert_no_check_errors(sdb)

    def test_loader_waits_for_running_daemon(self):
        """The blocking latch: concurrent load + materialization, no errors."""
        sdb = build_sdb()
        sdb.daemon.step_rows = 2  # many short latch holds
        sdb.materialize("t", "v", SqlType.INTEGER)
        sdb.materialize("t", "w", SqlType.TEXT)
        sdb.start_daemon()
        try:
            for i in range(5):
                sdb.load("t", [{"v": 1000 + i, "w": f"c{i}"}])
            assert sdb.daemon.wait_until_idle(10.0)
        finally:
            sdb.stop_daemon()
        assert len(ground_truth(sdb)) == len(DOCS) + 5
        assert query_vw(sdb) == ground_truth(sdb)
        assert_no_check_errors(sdb)


class TestStatusSurface:
    def test_sinewdb_status_includes_daemon_and_latch(self):
        sdb = build_sdb()
        sdb.materialize("t", "v", SqlType.INTEGER)
        sdb.run_materializer("t")
        status = sdb.status()
        assert status["collections"]["t"]["documents"] == len(DOCS)
        assert status["collections"]["t"]["materialized"] == 1
        assert status["collections"]["t"]["dirty"] == 0
        assert status["daemon"]["state"] == "idle"
        assert status["daemon"]["backlog"] == {}
        assert status["latch"]["acquisitions"] >= 2  # load + steps
        assert status["latch"]["holder"] is None

    def test_status_lines_render(self):
        sdb = build_sdb()
        text = "\n".join(sdb.daemon.status().lines())
        assert "state:" in text and "rows moved:" in text
        assert "latch waits:" in text and "last error:" in text


class TestRecovery:
    def test_cursor_persists_in_catalog_and_resumes_mid_column(self):
        sdb = build_sdb()
        sdb.materialize("t", "v", SqlType.INTEGER)
        state = sdb.catalog.table("t").state(
            sdb.catalog.lookup_id("v", SqlType.INTEGER)
        )
        sdb.materializer_step("t", max_rows=10)
        assert state.cursor == 10
        assert state.dirty
        # a "restarted" materializer resumes from the catalog cursor
        report = sdb.run_materializer("t")
        assert report.rows_examined == len(DOCS) - 10
        assert state.cursor == 0 and not state.dirty
        assert query_vw(sdb) == ground_truth(sdb)

    def test_recover_clamps_stale_cursor(self):
        sdb = build_sdb()
        sdb.materialize("t", "v", SqlType.INTEGER)
        state = sdb.catalog.table("t").state(
            sdb.catalog.lookup_id("v", SqlType.INTEGER)
        )
        state.cursor = 10_000  # as if rows vanished under a crash
        report = sdb.daemon.recover()
        assert report.dirty_columns == 1
        assert report.cursors_clamped == 1
        assert state.cursor == 0  # conservative re-scan from the start
        sdb.run_materializer("t")
        assert query_vw(sdb) == ground_truth(sdb)

    def test_reflected_catalog_exposes_cursor(self):
        sdb = build_sdb()
        sdb.materialize("t", "v", SqlType.INTEGER)
        sdb.materializer_step("t", max_rows=10)
        sdb.sync_catalog()
        rows = sdb.db.execute(
            "SELECT cursor FROM _sinew_catalog_t WHERE dirty = true"
        ).rows
        assert rows == [(10,)]


class TestKillEveryInjectionPoint:
    """The acceptance matrix: crash at every registered point, recover."""

    #: hit index per point, chosen to land mid-column / mid-step where the
    #: point allows it (row-level points get a deep index on purpose).
    KILL_AT = {
        "materializer.before_row_move": 11,
        "materializer.after_row_move": 11,
        "materializer.before_step": 2,
        "storage.write_row": 5,
        "daemon.before_step": 2,
    }

    def test_canonical_points_match_registry(self):
        assert set(CANONICAL_POINTS) <= known_points()

    @pytest.mark.parametrize("point", CANONICAL_POINTS)
    def test_kill_recover_converge(self, point):
        sdb = build_sdb()
        truth_before = ground_truth(sdb)
        injector = FaultInjector()
        sdb.attach_faults(injector)
        sdb.materialize("t", "v", SqlType.INTEGER)
        sdb.materialize("t", "w", SqlType.TEXT)
        where = {"table": "t"} if point == "storage.write_row" else None
        injector.kill_at(point, at=self.KILL_AT.get(point, 1), where=where)

        sdb.start_daemon()
        # Drive the loader from the foreground (its points fire here); the
        # injected kill may surface in this thread instead of the daemon's.
        foreground_killed = False
        try:
            sdb.load("t", MORE)
        except InjectedFault:
            foreground_killed = True

        assert wait_for(lambda: injector.fired(point) == 1), (
            f"{point} was never hit"
        )
        if not foreground_killed:
            # the kill went to the daemon thread: it must die as "crashed"
            assert wait_for(lambda: not sdb.daemon.is_alive())
            assert sdb.daemon.state == "crashed"
            assert point in (sdb.daemon.last_error or "")
        else:
            sdb.daemon.wait_until_idle(10.0)
            sdb.stop_daemon()

        # --- invariant 1: no integrity errors at the crash point ---------
        assert_no_check_errors(sdb)
        # --- invariant 2: dirty columns still answer correctly -----------
        truth_now = ground_truth(sdb)
        assert query_vw(sdb) == truth_now
        assert set(truth_before) <= set(truth_now)

        # --- restart + recovery ------------------------------------------
        recoveries_expected = 1 if sdb.daemon.state == "crashed" else 0
        if sdb.daemon.state == "crashed":
            sdb.start_daemon()
        else:
            sdb.start_daemon()
        try:
            assert sdb.daemon.wait_until_idle(10.0), "backlog never drained"
        finally:
            sdb.stop_daemon()

        assert sdb.daemon.recoveries == recoveries_expected
        assert not sdb.catalog.table("t").dirty_columns()
        assert "v" in sdb.db.table("t").schema
        assert "w" in sdb.db.table("t").schema
        assert_no_check_errors(sdb)
        assert query_vw(sdb) == ground_truth(sdb)
        # materialized clean columns answer straight from physical storage
        result = sdb.query("SELECT v FROM t WHERE v >= 100")
        surviving_more = [v for v, _w in ground_truth(sdb) if v and v >= 100]
        assert sorted(r[0] for r in result.rows) == sorted(surviving_more)


class TestLoaderCrashConsistency:
    """Loader-side crash ordering: catalog may over-count, never under."""

    @pytest.mark.parametrize(
        "point", ["loader.before_insert", "loader.after_insert", "storage.write_row"]
    )
    def test_loader_crash_leaves_clean_state(self, point):
        sdb = build_sdb()
        sdb.materialize("t", "v", SqlType.INTEGER)
        sdb.run_materializer("t")
        injector = FaultInjector()
        sdb.attach_faults(injector)
        injector.plan(point, "raise", where={"table": "t"} if point == "storage.write_row" else None)
        with pytest.raises(InjectedFault):
            sdb.load("t", MORE)
        assert_no_check_errors(sdb)
        assert query_vw(sdb) == ground_truth(sdb)
        # the system keeps working: a clean load and settle still succeed
        sdb.load("t", [{"v": 777, "w": "ok"}])
        sdb.run_materializer("t")
        assert_no_check_errors(sdb)
        assert (777, "ok") in ground_truth(sdb)
        assert query_vw(sdb) == ground_truth(sdb)
