"""Further MongoDB-baseline coverage: pipeline composition and join phases."""

import pytest

from repro.baselines.mongo import MongoDatabase, client_side_join


@pytest.fixture()
def db():
    database = MongoDatabase()
    collection = database.collection("orders")
    collection.insert_many(
        [
            {"id": 1, "customer": "ada", "items": ["a", "b"], "total": 30},
            {"id": 2, "customer": "bob", "items": ["a"], "total": 10},
            {"id": 3, "customer": "ada", "items": ["c", "d", "e"], "total": 55},
            {"id": 4, "customer": "cyd", "total": 5},
        ]
    )
    return database


class TestPipelines:
    def test_match_unwind_group(self, db):
        out = db.collection("orders").aggregate(
            [
                {"$match": {"total": {"$gte": 10}}},
                {"$unwind": "$items"},
                {"$group": {"_id": "$customer", "n_items": {"$sum": 1}}},
            ]
        )
        assert {row["_id"]: row["n_items"] for row in out} == {"ada": 5, "bob": 1}

    def test_group_then_sort_then_limit(self, db):
        out = db.collection("orders").aggregate(
            [
                {"$group": {"_id": "$customer", "spend": {"$sum": "$total"}}},
                {"$sort": {"spend": -1}},
                {"$limit": 1},
            ]
        )
        assert out == [{"_id": "ada", "spend": 85}]

    def test_match_on_array_in_pipeline(self, db):
        out = db.collection("orders").aggregate(
            [{"$match": {"items": "a"}}, {"$count": "n"}]
        )
        assert out == [{"n": 2}]

    def test_group_constant_key(self, db):
        out = db.collection("orders").aggregate(
            [{"$group": {"_id": 1, "grand": {"$sum": "$total"}}}]
        )
        assert out == [{"_id": 1, "grand": 100}]


class TestClientSideJoinPhases:
    def test_intermediate_collections_created(self, db):
        orders = db.collection("orders")
        customers = db.collection("customers")
        customers.insert_many([{"name": "ada"}, {"name": "bob"}])
        output = client_side_join(
            db, customers, orders, left_key="name", right_key="customer",
            output_name="joined",
        )
        # the tagged right-side spill exists and covers the whole collection
        assert len(db.collection("joined_right")) == len(orders)
        assert len(db.collection("joined_left")) == 2
        assert len(output) == 3  # ada x2 + bob x1

    def test_join_bytes_accounted(self, db):
        orders = db.collection("orders")
        before = db.total_bytes()
        client_side_join(db, orders, orders, left_key="customer",
                         right_key="customer", output_name="selfjoin")
        assert db.total_bytes() > before * 2  # intermediates dwarf the base

    def test_unmatched_keys_produce_nothing(self, db):
        orders = db.collection("orders")
        lonely = db.collection("lonely")
        lonely.insert_many([{"k": "nope"}])
        output = client_side_join(
            db, lonely, orders, left_key="k", right_key="customer",
            output_name="out2",
        )
        assert len(output) == 0
