"""Unit tests for the EAV shredding baseline."""

import pytest

from repro.baselines.eav import EavStore
from repro.rdbms.database import DatabaseConfig
from repro.rdbms.errors import DiskFullError

DOCS = [
    {"str1": "aaa", "num": 1, "flag": True, "nested_obj": {"str": "x"}},
    {"str1": "bbb", "num": 2, "arr": ["p", "q", "r"]},
    {"str1": "ccc", "num": 3, "sparse_1": "v"},
]


@pytest.fixture()
def store():
    instance = EavStore()
    instance.create_collection("t")
    instance.load("t", DOCS)
    return instance


class TestShredding:
    def test_one_tuple_per_flattened_value(self, store):
        # doc1: str1, num, flag, nested_obj.str = 4
        # doc2: str1, num, arr x3 = 5 ; doc3: 3 -> 12 total
        count = store.db.execute("SELECT count(*) FROM t_eav").scalar()
        assert count == 12

    def test_value_typed_into_columns(self, store):
        rows = store.db.execute(
            "SELECT value_type, str_val, num_val, bool_val FROM t_eav "
            "WHERE key_name = 'flag'"
        ).rows
        assert rows == [("bool", None, None, True)]

    def test_nested_keys_flattened_with_dots(self, store):
        rows = store.db.execute(
            "SELECT str_val FROM t_eav WHERE key_name = 'nested_obj.str'"
        ).rows
        assert rows == [("x",)]

    def test_array_one_row_per_element(self, store):
        count = store.db.execute(
            "SELECT count(*) FROM t_eav WHERE key_name = 'arr'"
        ).scalar()
        assert count == 3

    def test_storage_larger_than_flat(self, store):
        assert store.storage_bytes("t") > 0
        assert store.n_documents("t") == 3


class TestMappingLayer:
    def test_project_multi_key_joins(self, store):
        result = store.project("t", ["str1", "num"])
        assert sorted(result.rows) == [("aaa", 1.0), ("bbb", 2.0), ("ccc", 3.0)]

    def test_project_single(self, store):
        result = store.project_single("t", "str1")
        assert len(result) == 3

    def test_matching_oids(self, store):
        result = store.matching_oids("t", "num", "num_val >= 2")
        assert sorted(row[0] for row in result.rows) == [1, 2]

    def test_select_objects_reconstructs(self, store):
        result = store.select_objects("t", "str1", "b.str_val = 'bbb'")
        documents = store.reconstruct(result.rows)
        assert set(documents) == {1}
        assert documents[1]["num"] == 2
        assert sorted(documents[1]["arr"]) == ["p", "q", "r"]

    def test_update_existing_key(self, store):
        updated = store.update("t", "num", "99", "str1", "aaa")
        assert updated == 1
        rows = store.db.execute(
            "SELECT str_val FROM t_eav WHERE key_name = 'num' AND oid = 0"
        ).rows
        assert rows == [("99",)]

    def test_update_inserts_missing_key(self, store):
        store.update("t", "brand_new", "v", "str1", "ccc")
        rows = store.db.execute(
            "SELECT oid FROM t_eav WHERE key_name = 'brand_new'"
        ).rows
        assert rows == [(2,)]


class TestDiskExhaustion:
    def test_reconstruction_spool_can_exhaust_disk(self):
        store = EavStore("tight", DatabaseConfig(work_mem_bytes=8 * 1024))
        store.create_collection("t")
        documents = [
            {"k": f"v{i}", "a": "x" * 40, "b": "y" * 40, "c": i, "d": i, "e": i}
            for i in range(2000)
        ]
        store.load("t", documents)
        # the disk is nearly full after loading: ~1 MB of scratch left
        store.db.disk.budget_bytes = store.db.disk.used_bytes + 1_000_000
        with pytest.raises(DiskFullError):
            store.select_objects("t", "k", "b.str_val LIKE 'v%'")

    def test_selective_reconstruction_fits(self):
        store = EavStore("tight2", DatabaseConfig(work_mem_bytes=8 * 1024))
        store.create_collection("t")
        store.load("t", [{"k": f"v{i}", "a": i} for i in range(2000)])
        store.db.disk.budget_bytes = store.db.disk.used_bytes + 1_000_000
        result = store.select_objects("t", "k", "b.str_val = 'v7'")
        assert len(store.reconstruct(result.rows)) == 1
