"""Unit + property tests for the jsonb-style baseline (section 6.7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import jsonb
from repro.rdbms.errors import TypeCastError

DOCS = [
    {"str1": "aaa", "num": 1, "dyn1": 5, "nested": {"k": "deep", "n": 2}},
    {"str1": "bbb", "num": 2, "dyn1": "not-a-number", "arr": [1, "two", None]},
]


class TestFormat:
    def test_roundtrip(self):
        for document in DOCS:
            assert jsonb.decode(jsonb.encode(document)) == document

    def test_roundtrip_edge_values(self):
        for value in ({}, [], {"a": []}, {"": None} if False else {"x": None},
                      {"k": ""}, {"u": "héllo ☃"}):
            assert jsonb.decode(jsonb.encode(value)) == value

    def test_get_raw_top_level(self):
        data = jsonb.encode(DOCS[0])
        assert jsonb.get_raw(data, "str1") == "aaa"
        assert jsonb.get_raw(data, "num") == 1
        assert jsonb.get_raw(data, "missing") is None

    def test_get_raw_nested(self):
        data = jsonb.encode(DOCS[0])
        assert jsonb.get_raw(data, "nested.k") == "deep"
        assert jsonb.get_raw(data, "nested.missing") is None
        assert jsonb.get_raw(data, "num.deeper") is None  # scalar, no descent

    def test_get_raw_array_value(self):
        data = jsonb.encode(DOCS[1])
        assert jsonb.get_raw(data, "arr") == [1, "two", None]

    def test_keys_stored_sorted_for_binary_search(self):
        # every key of a wide object must be findable (exercises the
        # bisection over the sorted key directory)
        wide = {f"key_{index:03d}": index for index in range(101)}
        data = jsonb.encode(wide)
        for key, value in wide.items():
            assert jsonb.get_raw(data, key) == value

    def test_binary_larger_than_sinew_style_dictionary(self):
        # jsonb carries full key strings per record
        document = {"a_rather_long_key_name": 1}
        assert len(jsonb.encode(document)) > len(b"a_rather_long_key_name")


_values = st.recursive(
    st.one_of(
        st.integers(min_value=-(2**60), max_value=2**60),
        st.floats(allow_nan=False, allow_infinity=False),
        st.booleans(),
        st.text(max_size=15),
        st.none(),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(alphabet="abcdefgh", min_size=1, max_size=6), children, max_size=4
        ),
    ),
    max_leaves=12,
)


class TestProperties:
    @given(st.dictionaries(st.text(alphabet="abcdefgh_", min_size=1, max_size=8), _values, max_size=8))
    @settings(max_examples=120, deadline=None)
    def test_roundtrip_property(self, document):
        assert jsonb.decode(jsonb.encode(document)) == document

    @given(st.dictionaries(st.text(alphabet="abcdefgh_", min_size=1, max_size=8), _values, max_size=8))
    @settings(max_examples=80, deadline=None)
    def test_get_raw_matches_decode(self, document):
        data = jsonb.encode(document)
        for key, value in document.items():
            if "." in key:
                continue  # dotted literal keys are shadowed by path syntax
            assert jsonb.get_raw(data, key) == value


class TestStore:
    @pytest.fixture()
    def store(self):
        instance = jsonb.PgJsonbStore()
        instance.create_collection("t")
        instance.load("t", DOCS)
        return instance

    def test_queries(self, store):
        result = store.query(
            "SELECT jsonb_get_text(data, 'str1') FROM t "
            "WHERE jsonb_get_num(data, 'num') > 1"
        )
        assert result.rows == [("bbb",)]

    def test_nested_extraction(self, store):
        result = store.query("SELECT jsonb_get_num(data, 'nested.n') FROM t")
        assert result.column(0) == [2, None]

    def test_q7_still_fails(self, store):
        # jsonb fixes CPU cost, not the multi-typed-key cast abort
        with pytest.raises(TypeCastError):
            store.query("SELECT id FROM t WHERE jsonb_get_num(data, 'dyn1') > 1")

    def test_still_opaque_to_optimizer(self, store):
        store.load("t", [{"num": index} for index in range(500)])
        store.analyze("t")
        plan = store.db.explain(
            "SELECT id FROM t WHERE jsonb_get_num(data, 'num') > 0"
        )
        assert "rows=200" in plan  # the fixed default survives jsonb

    def test_faster_than_text_json_extraction(self, store):
        import time

        from repro.baselines.pgjson import PgJsonStore

        # enough rows that the parse-per-row gap dwarfs scheduler noise
        documents = [
            {"k": f"v{index}", "pad": "x" * 200, "num": index} for index in range(4000)
        ]
        store.load("t", documents)
        text_store = PgJsonStore()
        text_store.create_collection("t")
        text_store.load("t", DOCS + documents)

        def best(fn):
            fn()
            return min(_timed(fn) for _ in range(7))

        def _timed(fn):
            start = time.perf_counter()
            fn()
            return time.perf_counter() - start

        binary = best(lambda: store.query("SELECT jsonb_get_num(data, 'num') FROM t"))
        text = best(lambda: text_store.query("SELECT json_get_num(data, 'num') FROM t"))
        assert binary < text
