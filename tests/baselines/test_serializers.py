"""Unit + property tests for the Appendix A serialization comparators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.avro_like import AvroLikeSerializer
from repro.baselines.protobuf_like import ProtobufLikeSerializer
from repro.baselines.record_schema import RecordSchema
from repro.baselines.varint import (
    decode_varint,
    encode_varint,
    zigzag_decode,
    zigzag_encode,
)

DOCS = [
    {"a": 1, "b": "hello", "c": 2.5, "d": True},
    {"a": 7, "e": {"x": 1, "y": "nested"}},
    {"b": "only-b", "f": [1, "two", None, False]},
    {},
]


@pytest.fixture(scope="module")
def schema():
    return RecordSchema.from_documents(DOCS)


class TestVarint:
    def test_roundtrip_values(self):
        for value in (0, 1, 127, 128, 300, 2**32, 2**60):
            encoded = encode_varint(value)
            decoded, position = decode_varint(encoded, 0)
            assert decoded == value and position == len(encoded)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_zigzag(self):
        for value in (0, -1, 1, -64, 63, -(2**40), 2**40):
            assert zigzag_decode(zigzag_encode(value)) == value

    @given(st.integers(min_value=0, max_value=2**63))
    @settings(max_examples=200, deadline=None)
    def test_varint_roundtrip_property(self, value):
        decoded, _ = decode_varint(encode_varint(value), 0)
        assert decoded == value


class TestRecordSchema:
    def test_field_numbers_deterministic(self, schema):
        numbers = [f.number for f in schema.ordered_fields()]
        assert numbers == sorted(numbers)
        names = [f.name for f in schema.ordered_fields()]
        assert names == sorted(names)

    def test_union_kinds_accumulate(self):
        schema = RecordSchema.from_documents([{"dyn": 1}, {"dyn": "s"}])
        kinds = schema.fields["dyn"].kinds
        assert set(kinds) == {"int", "text"}

    def test_sub_schema_for_nested(self, schema):
        assert schema.fields["e"].sub_schema is not None
        assert "x" in schema.fields["e"].sub_schema.fields


@pytest.mark.parametrize(
    "serializer_class", [AvroLikeSerializer, ProtobufLikeSerializer]
)
class TestRoundTrips:
    def test_each_document(self, serializer_class, schema):
        serializer = serializer_class(schema)
        for document in DOCS:
            data = serializer.serialize(document)
            assert serializer.deserialize(data) == document

    def test_extract_every_key(self, serializer_class, schema):
        serializer = serializer_class(schema)
        for document in DOCS:
            data = serializer.serialize(document)
            for key, value in document.items():
                assert serializer.extract(data, key) == value
            assert serializer.extract(data, "a" if "a" not in document else "zz") is None

    def test_extract_many(self, serializer_class, schema):
        serializer = serializer_class(schema)
        data = serializer.serialize(DOCS[0])
        assert serializer.extract_many(data, ["a", "zz_missing", "c"]) == [1, None, 2.5]


class TestFormatProperties:
    def test_avro_pays_for_absent_fields(self, schema):
        """Avro writes a union branch per schema field even when absent --
        the explicit-NULL bloat of Appendix A."""
        avro = AvroLikeSerializer(schema)
        protobuf = ProtobufLikeSerializer(schema)
        empty = {}
        assert len(avro.serialize(empty)) == len(schema)  # one branch byte each
        assert len(protobuf.serialize(empty)) == 0  # absent fields are free

    def test_avro_grows_with_schema_not_data(self):
        documents = [{"k": 1}]
        wide_docs = documents + [{f"pad{i:03d}": i} for i in range(200)]
        narrow = AvroLikeSerializer(RecordSchema.from_documents(documents))
        wide = AvroLikeSerializer(RecordSchema.from_documents(wide_docs))
        assert len(wide.serialize({"k": 1})) > len(narrow.serialize({"k": 1})) + 150

    def test_protobuf_short_circuits_past_target(self, schema):
        serializer = ProtobufLikeSerializer(schema)
        data = serializer.serialize({"f": [1]})
        # 'a' has a smaller field number than 'f': absent and detected early
        assert serializer.extract(data, "a") is None


_flat_docs = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d", "e", "f", "g", "h"]),
    st.one_of(
        st.integers(min_value=-(2**50), max_value=2**50),
        st.floats(allow_nan=False, allow_infinity=False),
        st.booleans(),
        st.text(max_size=15),
    ),
    max_size=8,
)


class TestPropertyRoundTrips:
    @given(st.lists(_flat_docs, min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_both_formats_roundtrip_any_corpus(self, corpus):
        schema = RecordSchema.from_documents(corpus)
        for serializer in (AvroLikeSerializer(schema), ProtobufLikeSerializer(schema)):
            for document in corpus:
                data = serializer.serialize(document)
                assert serializer.deserialize(data) == document
