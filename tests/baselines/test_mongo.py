"""Unit tests for the MongoDB-like document store."""

import pytest

from repro.baselines.mongo import MongoDatabase, client_side_join
from repro.rdbms.errors import DiskFullError, ExecutionError

DOCS = [
    {"name": "a", "score": 10, "tags": ["x", "y"], "user": {"lang": "en"}},
    {"name": "b", "score": 20, "tags": ["y"], "user": {"lang": "pl"}},
    {"name": "c", "score": 30, "user": {"lang": "en"}, "extra": True},
    {"name": "d", "score": None},
]


@pytest.fixture()
def collection():
    database = MongoDatabase()
    coll = database.collection("t")
    coll.insert_many(DOCS)
    return coll


class TestFind:
    def test_equality(self, collection):
        assert len(collection.find({"name": "a"})) == 1

    def test_dotted_path(self, collection):
        assert len(collection.find({"user.lang": "en"})) == 2

    def test_range_operators(self, collection):
        assert len(collection.find({"score": {"$gte": 20}})) == 2
        assert len(collection.find({"score": {"$gt": 10, "$lt": 30}})) == 1

    def test_ne_and_in(self, collection):
        assert len(collection.find({"name": {"$ne": "a"}})) == 3
        assert len(collection.find({"name": {"$in": ["a", "d"]}})) == 2

    def test_exists(self, collection):
        assert len(collection.find({"extra": {"$exists": True}})) == 1
        assert len(collection.find({"extra": {"$exists": False}})) == 3
        # explicit null counts as absent, like Mongo sparse semantics here
        assert len(collection.find({"score": {"$exists": True}})) == 3

    def test_array_equality_matches_elements(self, collection):
        assert len(collection.find({"tags": "y"})) == 2
        assert len(collection.find({"tags": "x"})) == 1

    def test_projection(self, collection):
        rows = collection.find({"name": "a"}, ["score", "user.lang"])
        assert rows == [{"score": 10, "user.lang": "en"}]

    def test_type_bracketing(self, collection):
        # a string never equals a number
        assert collection.find({"score": "10"}) == []

    def test_count(self, collection):
        assert collection.count() == 4
        assert collection.count({"score": {"$gte": 20}}) == 2


class TestAggregate:
    def test_match_group(self, collection):
        out = collection.aggregate(
            [
                {"$match": {"score": {"$gte": 10}}},
                {"$group": {"_id": "$user.lang", "total": {"$sum": "$score"}}},
            ]
        )
        by_lang = {row["_id"]: row["total"] for row in out}
        assert by_lang == {"en": 40, "pl": 20}

    def test_unwind(self, collection):
        out = collection.aggregate([{"$unwind": "$tags"}])
        assert len(out) == 3

    def test_sort_and_limit(self, collection):
        out = collection.aggregate(
            [{"$sort": {"score": -1}}, {"$limit": 2}, {"$project": {"name": 1}}]
        )
        assert [row["name"] for row in out] == ["c", "b"]

    def test_count_stage(self, collection):
        out = collection.aggregate([{"$match": {"user.lang": "en"}}, {"$count": "n"}])
        assert out == [{"n": 2}]

    def test_avg_min_max(self, collection):
        out = collection.aggregate(
            [
                {"$group": {
                    "_id": 1,
                    "mean": {"$avg": "$score"},
                    "low": {"$min": "$score"},
                    "high": {"$max": "$score"},
                }}
            ]
        )
        assert out[0]["mean"] == 20
        assert (out[0]["low"], out[0]["high"]) == (10, 30)

    def test_bad_stage(self, collection):
        with pytest.raises(ExecutionError):
            collection.aggregate([{"$frobnicate": {}}])


class TestUpdate:
    def test_set_existing_and_new_field(self, collection):
        updated = collection.update_many({"name": "a"}, {"$set": {"score": 99, "fresh": 1}})
        assert updated == 1
        row = collection.find({"name": "a"})[0]
        assert row["score"] == 99 and row["fresh"] == 1

    def test_set_nested(self, collection):
        collection.update_many({"name": "b"}, {"$set": {"user.lang": "de"}})
        assert collection.find({"user.lang": "de"})[0]["name"] == "b"

    def test_requires_set(self, collection):
        with pytest.raises(ExecutionError):
            collection.update_many({}, {"replace": True})


class TestClientSideJoin:
    def test_join_results(self):
        database = MongoDatabase()
        left = database.collection("left")
        right = database.collection("right")
        left.insert_many([{"ref": "k1", "v": 1}, {"ref": "k2", "v": 2}])
        right.insert_many([{"key": "k1"}, {"key": "k1"}, {"key": "k3"}])
        output = client_side_join(
            database, left, right, left_key="ref", right_key="key"
        )
        assert len(output) == 2  # k1 matches twice

    def test_join_exhausts_disk_budget(self):
        database = MongoDatabase(disk_budget_bytes=200_000)
        coll = database.collection("t")
        coll.insert_many(
            [{"k": f"key{i % 5}", "payload": "x" * 60} for i in range(1000)]
        )
        with pytest.raises(DiskFullError):
            client_side_join(database, coll, coll, left_key="k", right_key="k")


class TestAccounting:
    def test_bytes_scanned_counted(self, collection):
        before = collection.database.stats.bytes_scanned
        collection.find({"name": "a"})
        assert collection.database.stats.bytes_scanned > before

    def test_total_bytes(self, collection):
        assert collection.total_bytes > 0
        assert collection.database.total_bytes() == collection.total_bytes
