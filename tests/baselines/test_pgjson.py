"""Unit tests for the Postgres-JSON baseline."""

import pytest

from repro.baselines.pgjson import PgJsonStore
from repro.rdbms.errors import TypeCastError

DOCS = [
    {"str1": "aaa", "num": 1, "dyn1": 5, "nested": {"k": "deep"}},
    {"str1": "bbb", "num": 2, "dyn1": "not-a-number", "arr": [1, 2]},
]


@pytest.fixture()
def store():
    instance = PgJsonStore()
    instance.create_collection("t")
    instance.load("t", DOCS)
    return instance


class TestLoad:
    def test_stores_raw_text(self, store):
        rows = store.db.execute("SELECT data FROM t").rows
        assert all(isinstance(row[0], str) for row in rows)

    def test_json_strings_validated_not_transformed(self, store):
        raw = '{"x":   1}'  # odd spacing preserved verbatim
        store.load("t", [raw])
        rows = store.db.execute("SELECT data FROM t WHERE id = 2").rows
        assert rows == [(raw,)]

    def test_invalid_json_rejected(self, store):
        with pytest.raises(Exception):
            store.load("t", ["{broken"])

    def test_n_documents(self, store):
        assert store.n_documents("t") == 2


class TestExtraction:
    def test_text_extraction(self, store):
        result = store.query("SELECT json_get_text(data, 'str1') FROM t")
        assert result.column(0) == ["aaa", "bbb"]

    def test_numeric_extraction(self, store):
        result = store.query(
            "SELECT id FROM t WHERE json_get_num(data, 'num') > 1"
        )
        assert result.column(0) == [1]

    def test_nested_path(self, store):
        result = store.query("SELECT json_get_text(data, 'nested.k') FROM t")
        assert result.column(0) == ["deep", None]

    def test_exists(self, store):
        result = store.query("SELECT id FROM t WHERE json_exists(data, 'arr')")
        assert result.column(0) == [1]

    def test_array_as_text_like_hack(self, store):
        # the paper's "technically incorrect" array predicate
        result = store.query(
            "SELECT id FROM t WHERE json_get_text(data, 'arr') LIKE '%2%'"
        )
        assert result.column(0) == [1]


class TestMultiTypedKeyFailure:
    def test_numeric_cast_on_string_value_aborts(self, store):
        # the Q7 behaviour of paper section 6.4
        with pytest.raises(TypeCastError, match="invalid input syntax"):
            store.query("SELECT id FROM t WHERE json_get_num(data, 'dyn1') > 1")

    def test_projection_of_multityped_key_is_fine(self, store):
        result = store.query("SELECT json_get_text(data, 'dyn1') FROM t")
        assert result.column(0) == ["5", "not-a-number"]

    def test_boolean_cast_failure(self, store):
        with pytest.raises(TypeCastError):
            store.query("SELECT id FROM t WHERE json_get_bool(data, 'str1')")


class TestOptimizerOpacity:
    def test_predicates_get_default_estimate(self, store):
        store.load("t", [{"num": i} for i in range(500)])
        store.analyze("t")
        plan = store.db.explain(
            "SELECT id FROM t WHERE json_get_num(data, 'num') > 0"
        )
        # 200-row default, not the true ~500
        assert "rows=200" in plan
