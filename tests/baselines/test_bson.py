"""Unit + property tests for the BSON-like format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import bson


class TestRoundTrip:
    def test_scalars(self):
        document = {"i": -5, "f": 2.5, "s": "text", "b": True, "n": None}
        assert bson.decode(bson.encode(document)) == document

    def test_nested_and_arrays(self):
        document = {"user": {"id": 7, "tags": ["a", "b"]}, "arr": [1, None, "x"]}
        assert bson.decode(bson.encode(document)) == document

    def test_empty(self):
        assert bson.decode(bson.encode({})) == {}

    def test_unicode(self):
        document = {"k": "héllo ☃"}
        assert bson.decode(bson.encode(document)) == document


class TestGet:
    def test_top_level(self):
        data = bson.encode({"a": 1, "b": "x"})
        assert bson.get(data, "a") == 1
        assert bson.get(data, "b") == "x"
        assert bson.get(data, "zzz") is None

    def test_dotted_path(self):
        data = bson.encode({"user": {"geo": {"lat": 1.5}}})
        assert bson.get(data, "user.geo.lat") == 1.5
        assert bson.get(data, "user.geo") == {"lat": 1.5}
        assert bson.get(data, "user.nope") is None

    def test_path_through_scalar_is_none(self):
        data = bson.encode({"a": 1})
        assert bson.get(data, "a.b") is None

    def test_array_value(self):
        data = bson.encode({"arr": [1, 2, 3]})
        assert bson.get(data, "arr") == [1, 2, 3]


class TestHas:
    def test_presence(self):
        data = bson.encode({"a": 1, "n": None, "user": {"id": 1}})
        assert bson.has(data, "a")
        assert not bson.has(data, "n")  # explicit null counts as absent
        assert bson.has(data, "user.id")
        assert not bson.has(data, "missing")

    def test_size_grows_with_keys(self):
        small = bson.encode({"a": 1})
        large = bson.encode({("k" * 30 + str(i)): 1 for i in range(10)})
        assert bson.size(large) > bson.size(small)


_values = st.recursive(
    st.one_of(
        st.integers(min_value=-(2**62), max_value=2**62),
        st.floats(allow_nan=False, allow_infinity=False),
        st.booleans(),
        st.text(max_size=20),
        st.none(),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(alphabet="abcdefghij", min_size=1, max_size=6), children, max_size=4
        ),
    ),
    max_leaves=15,
)

_documents = st.dictionaries(
    st.text(alphabet="abcdefghijklmnop_", min_size=1, max_size=10),
    _values,
    max_size=8,
)


class TestProperties:
    @given(_documents)
    @settings(max_examples=150, deadline=None)
    def test_roundtrip(self, document):
        assert bson.decode(bson.encode(document)) == document

    @given(_documents)
    @settings(max_examples=100, deadline=None)
    def test_get_matches_decode(self, document):
        data = bson.encode(document)
        for key, value in document.items():
            assert bson.get(data, key) == value
            assert bson.has(data, key) == (value is not None)
