"""Cross-system agreement tests: all four systems must compute the same
logical answers for the NoBench suite (the precondition for comparing
their runtimes in Figures 6-8)."""

import pytest

from repro.nobench import (
    EavNoBench,
    MongoNoBench,
    NoBenchGenerator,
    PgJsonNoBench,
    SinewNoBench,
)
from repro.rdbms.errors import TypeCastError

N = 1200


@pytest.fixture(scope="module")
def world():
    generator = NoBenchGenerator(N, seed=7)
    documents = list(generator.documents())
    params = generator.params()
    adapters = {
        "sinew": SinewNoBench(params),
        "mongo": MongoNoBench(params),
        "eav": EavNoBench(params),
        "pgjson": PgJsonNoBench(params),
    }
    for adapter in adapters.values():
        adapter.load(documents)
        adapter.prepare()
    return adapters, params, documents


class TestProjections:
    def test_q1_counts_agree(self, world):
        adapters, _params, _docs = world
        counts = {name: a.q1() for name, a in adapters.items()}
        assert set(counts.values()) == {N}

    def test_q2_counts_agree(self, world):
        adapters, _params, _docs = world
        counts = {name: a.q2() for name, a in adapters.items()}
        assert set(counts.values()) == {N}

    def test_q3_row_per_object_systems(self, world):
        adapters, _params, _docs = world
        # row-per-object systems return every object (mostly NULLs); the
        # EAV mapping layer can only return objects having the keys
        assert adapters["sinew"].q3() == N
        assert adapters["mongo"].q3() == N
        assert adapters["pgjson"].q3() == N
        assert 0 < adapters["eav"].q3() < N // 10


class TestSelections:
    @pytest.mark.parametrize("query_id", ["q5", "q6", "q8", "q9"])
    def test_selection_counts_agree(self, world, query_id):
        adapters, _params, _docs = world
        counts = {name: a.run(query_id) for name, a in adapters.items()}
        assert len(set(counts.values())) == 1, counts
        assert counts["sinew"] >= 1

    def test_q5_expected_count_is_one(self, world):
        adapters, _params, _docs = world
        assert adapters["sinew"].q5() == 1

    def test_q6_matches_ground_truth(self, world):
        adapters, params, documents = world
        truth = sum(
            1 for doc in documents if params.q6_low <= doc["num"] <= params.q6_high
        )
        assert adapters["sinew"].q6() == truth

    def test_q7_agree_except_pgjson(self, world):
        adapters, params, documents = world
        truth = sum(
            1
            for doc in documents
            if isinstance(doc["dyn1"], int) and not isinstance(doc["dyn1"], bool)
            and params.q7_low <= doc["dyn1"] <= params.q7_high
        )
        assert adapters["sinew"].q7() == truth
        assert adapters["mongo"].q7() == truth
        assert adapters["eav"].q7() == truth
        with pytest.raises(TypeCastError):
            adapters["pgjson"].q7()

    def test_q8_matches_ground_truth(self, world):
        adapters, params, documents = world
        truth = sum(1 for doc in documents if params.q8_term in doc["nested_arr"])
        assert adapters["sinew"].q8() == truth


class TestAggregationAndJoin:
    def test_q10_group_counts_agree(self, world):
        adapters, _params, _docs = world
        counts = {name: a.q10() for name, a in adapters.items()}
        assert len(set(counts.values())) == 1, counts

    def test_q10_totals_match_ground_truth(self, world):
        adapters, params, documents = world
        matched = [
            doc for doc in documents if params.q10_low <= doc["num"] <= params.q10_high
        ]
        expected_groups = len({doc["thousandth"] for doc in matched})
        assert adapters["sinew"].q10() == expected_groups

    def test_q11_counts_agree(self, world):
        adapters, params, documents = world
        str1_to_count = {}
        for doc in documents:
            str1_to_count[doc["str1"]] = str1_to_count.get(doc["str1"], 0) + 1
        truth = sum(
            str1_to_count.get(doc["nested_obj"]["str"], 0)
            for doc in documents
            if params.q11_low <= doc["num"] <= params.q11_high
        )
        counts = {name: a.q11() for name, a in adapters.items()}
        assert set(counts.values()) == {truth}, counts
        assert truth >= 1


class TestUpdate:
    def test_update_counts_agree_and_apply(self, world):
        adapters, params, documents = world
        truth = sum(
            1
            for doc in documents
            if doc.get(params.update_where_key) == params.update_where_value
        )
        assert truth >= 1
        counts = {name: a.update() for name, a in adapters.items()}
        assert set(counts.values()) == {truth}, counts
        # verify one system actually persisted the write
        sinew = adapters["sinew"]
        check = sinew.sdb.query(
            f"SELECT count(*) FROM nobench_main "
            f"WHERE {params.update_set_key} = 'DUMMY'"
        )
        assert check.scalar() >= truth


class TestSinewSpecifics:
    def test_materialization_matches_paper(self, world):
        adapters, _params, _docs = world
        assert adapters["sinew"].materialized_keys() == [
            "nested_arr",
            "nested_obj",
            "num",
            "str1",
            "thousandth",
        ]

    def test_sinew_most_compact(self, world):
        adapters, _params, _docs = world
        sizes = {name: a.storage_bytes() for name, a in adapters.items()}
        assert sizes["sinew"] < sizes["mongo"]
        assert sizes["sinew"] < sizes["pgjson"]
        assert sizes["eav"] > 2 * sizes["pgjson"]
