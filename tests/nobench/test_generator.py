"""Unit tests for the NoBench data generator."""

from collections import Counter

import pytest

from repro.nobench.generator import (
    ARRAY_LENGTH,
    SPARSE_PER_RECORD,
    NoBenchGenerator,
    base32_string,
)

N = 4000


@pytest.fixture(scope="module")
def generator():
    return NoBenchGenerator(N, seed=42)


@pytest.fixture(scope="module")
def documents(generator):
    return list(generator.documents())


class TestDeterminism:
    def test_same_seed_same_data(self):
        first = list(NoBenchGenerator(100, seed=1).documents())
        second = list(NoBenchGenerator(100, seed=1).documents())
        assert first == second

    def test_different_seed_different_data(self):
        first = list(NoBenchGenerator(100, seed=1).documents())
        second = list(NoBenchGenerator(100, seed=2).documents())
        assert first != second

    def test_params_deterministic(self, generator):
        assert generator.params() == generator.params()


class TestRecordShape:
    def test_approximately_fifteen_keys(self, documents):
        # 9 fixed + 10 sparse = 19 keys per record
        assert all(len(doc) == 9 + SPARSE_PER_RECORD for doc in documents)

    def test_fixed_keys_present(self, documents):
        fixed = {"str1", "str2", "num", "bool", "dyn1", "dyn2",
                 "nested_obj", "nested_arr", "thousandth"}
        assert fixed <= set(documents[0])

    def test_nested_obj_shape(self, documents):
        nested = documents[0]["nested_obj"]
        assert set(nested) == {"str", "num"}
        assert isinstance(nested["str"], str)

    def test_nested_arr_length(self, documents):
        assert all(len(doc["nested_arr"]) == ARRAY_LENGTH for doc in documents)

    def test_thousandth_invariant(self, documents):
        assert all(doc["thousandth"] == doc["num"] % 1000 for doc in documents)


class TestDistributions:
    def test_num_is_a_permutation(self, documents):
        nums = [doc["num"] for doc in documents]
        assert sorted(nums) == list(range(N))

    def test_str1_unique(self, documents):
        assert len({doc["str1"] for doc in documents}) == N

    def test_str2_low_cardinality(self, documents):
        # must be below the 200 materialization threshold
        assert len({doc["str2"] for doc in documents}) <= 100

    def test_dyn1_mixed_types(self, documents):
        kinds = Counter(type(doc["dyn1"]).__name__ for doc in documents)
        assert set(kinds) == {"int", "str", "bool"}
        for count in kinds.values():
            assert count / N < 0.6  # each attribute below the density threshold

    def test_sparse_keys_clustered(self, documents):
        for doc in documents[:200]:
            indexes = sorted(
                int(key.split("_")[1]) for key in doc if key.startswith("sparse_")
            )
            assert len(indexes) == SPARSE_PER_RECORD
            assert indexes[-1] - indexes[0] == SPARSE_PER_RECORD - 1
            assert indexes[0] % SPARSE_PER_RECORD == 0

    def test_each_sparse_key_about_one_percent(self, documents):
        counts = Counter()
        for doc in documents:
            for key in doc:
                if key.startswith("sparse_"):
                    counts[key] += 1
        densities = [count / N for count in counts.values()]
        assert 0.001 < sum(densities) / len(densities) < 0.05

    def test_nested_obj_str_references_str1_domain(self, generator, documents):
        str1_values = {doc["str1"] for doc in documents}
        hits = sum(1 for doc in documents[:500] if doc["nested_obj"]["str"] in str1_values)
        assert hits == 500  # drawn from the str1 pool, so Q11 joins match


class TestQueryParams:
    def test_q5_value_exists(self, generator, documents):
        params = generator.params()
        assert any(doc["str1"] == params.q5_str1 for doc in documents)

    def test_q6_selectivity_near_point_one_percent(self, generator, documents):
        params = generator.params()
        matched = sum(
            1 for doc in documents if params.q6_low <= doc["num"] <= params.q6_high
        )
        assert matched == params.q6_high - params.q6_low + 1

    def test_q9_matches_something(self, generator, documents):
        params = generator.params()
        matched = sum(
            1 for doc in documents if doc.get(params.q9_key) == params.q9_value
        )
        assert matched >= 1

    def test_update_selectivity_small(self, generator, documents):
        params = generator.params()
        matched = sum(
            1
            for doc in documents
            if doc.get(params.update_where_key) == params.update_where_value
        )
        assert 1 <= matched <= max(3, N // 1000)

    def test_q8_term_present(self, generator, documents):
        params = generator.params()
        assert any(params.q8_term in doc["nested_arr"] for doc in documents)

    def test_base32_format(self):
        value = base32_string(100)
        assert value.isupper() or "=" in value
        import base64

        assert base64.b32decode(value) == b"100"
