"""Ground-truth checks for the Table 1 queries over synthetic tweets."""

import pytest

from repro.core import SinewDB
from repro.rdbms.types import type_from_name
from repro.workloads import (
    TABLE1_QUERIES,
    TABLE2_PHYSICAL_ATTRIBUTES,
    TwitterGenerator,
)

N = 1500


@pytest.fixture(scope="module")
def world():
    generator = TwitterGenerator(N)
    tweets = list(generator.tweets())
    deletes = list(generator.deletes(N // 3))
    sdb = SinewDB("twitter_truth")
    sdb.create_collection("tweets")
    sdb.create_collection("deletes")
    sdb.load("tweets", tweets)
    sdb.load("deletes", deletes)
    return sdb, tweets, deletes


class TestTable1GroundTruth:
    def test_t1_distinct_users(self, world):
        sdb, tweets, _deletes = world
        expected = len({t["user"]["id"] for t in tweets})
        assert len(sdb.query(TABLE1_QUERIES["T1"])) == expected

    def test_t2_sum_per_user(self, world):
        sdb, tweets, _deletes = world
        by_user = {}
        for tweet in tweets:
            by_user.setdefault(tweet["user"]["id"], 0)
            by_user[tweet["user"]["id"]] += tweet["retweet_count"]
        result = sdb.query(
            'SELECT "user.id", SUM(retweet_count) FROM tweets GROUP BY "user.id"'
        )
        assert dict(result.rows) == by_user

    def test_t3_deleted_msa_tweets(self, world):
        sdb, tweets, deletes = world
        msa_ids = {
            t["id_str"] for t in tweets if t["user"]["lang"] == "msa"
        }
        # tweets in 'msa' joined against deletes twice on user_id
        delete_by_user: dict = {}
        for record in deletes:
            status = record["delete"]["status"]
            delete_by_user.setdefault(status["user_id"], []).append(status["id_str"])
        expected = 0
        for record in deletes:
            status = record["delete"]["status"]
            if status["id_str"] in msa_ids:
                expected += len(delete_by_user[status["user_id"]])
        assert len(sdb.query(TABLE1_QUERIES["T3"])) == expected

    def test_results_survive_materialization(self, world):
        sdb, _tweets, _deletes = world
        before = {
            qid: sorted(map(repr, sdb.query(sql).rows))
            for qid, sql in TABLE1_QUERIES.items()
        }
        for key, type_name in TABLE2_PHYSICAL_ATTRIBUTES:
            table = "deletes" if key.startswith("delete.") else "tweets"
            sdb.materialize(table, key, type_from_name(type_name))
        sdb.run_materializer("tweets")
        sdb.run_materializer("deletes")
        sdb.analyze()
        after = {
            qid: sorted(map(repr, sdb.query(sql).rows))
            for qid, sql in TABLE1_QUERIES.items()
        }
        assert before == after
