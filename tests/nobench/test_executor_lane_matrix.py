"""Serial vs thread vs process executor lanes over the Figure 6 suite.

The bench gate (benchmarks/run_bench_gate.py) compares all three lanes
at full scale in CI; this is the tier-1 version of the same contract at
test scale: every lane returns identical rows in identical order, with
the identical extraction *access* signature (UDF calls plus the sum of
decodes and cache hits -- the splits may differ with cache locality, the
totals may not).  See DESIGN.md section 14.
"""

import pytest

from repro.core.sinew import SinewConfig
from repro.nobench import NoBenchGenerator, SinewNoBench
from repro.rdbms.database import DatabaseConfig

N = 1500
FIG6_QUERIES = ["q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9", "q10"]


def _access_signature(exec_stats: dict) -> tuple:
    return (
        exec_stats.get("udf_calls", 0),
        exec_stats.get("header_decodes", 0)
        + exec_stats.get("header_cache_hits", 0),
        exec_stats.get("subdoc_decodes", 0)
        + exec_stats.get("subdoc_cache_hits", 0),
    )


@pytest.fixture(scope="module")
def matrix():
    generator = NoBenchGenerator(N, seed=11)
    documents = list(generator.documents())
    params = generator.params()
    adapters = {}
    for lane in ("serial", "thread", "process"):
        adapter = SinewNoBench(
            params,
            SinewConfig(
                database=DatabaseConfig(parallel_workers=4, executor_lane=lane)
            ),
        )
        adapter.load(documents)
        adapter.prepare()
        adapters[lane] = adapter
    yield adapters
    for adapter in adapters.values():
        adapter.sdb.close()


class TestLaneMatrix:
    @pytest.mark.parametrize("query_id", FIG6_QUERIES)
    def test_rows_order_and_extraction_accesses_agree(self, matrix, query_id):
        results = {
            lane: adapter.sdb.query(adapter.sql_for(query_id))
            for lane, adapter in matrix.items()
        }
        base = results["serial"]
        for lane in ("thread", "process"):
            assert results[lane].rows == base.rows, f"{query_id} rows ({lane})"
            assert _access_signature(results[lane].exec_stats) == (
                _access_signature(base.exec_stats)
            ), f"{query_id} extraction accesses ({lane})"

    def test_extraction_queries_actually_cross_the_process_boundary(self, matrix):
        adapter = matrix["process"]
        lanes_used = {
            query_id: adapter.sdb.query(adapter.sql_for(query_id)).exec_stats.get(
                "lane"
            )
            for query_id in FIG6_QUERIES
        }
        # every parallelized query runs on the configured lane or falls
        # back to threads (e.g. sinew_matches has no remote spec); none
        # may end up anywhere else
        assert set(lanes_used.values()) <= {"process", "thread", None}
        process_queries = [
            query_id for query_id, lane in lanes_used.items() if lane == "process"
        ]
        # the extraction-UDF scans (the CPU-bound queries the speedup
        # gate judges) must genuinely leave the parent process
        assert len(process_queries) >= 3, lanes_used

    def test_serial_lane_reports_no_parallel_stats(self, matrix):
        adapter = matrix["serial"]
        result = adapter.sdb.query(adapter.sql_for("q2"))
        assert "lane" not in result.exec_stats
        assert "workers" not in result.exec_stats
