"""Targeted adapter checks for the EAV and PG-JSON NoBench implementations
(the cross-system agreement suite covers outcomes; these pin down the
mapping-layer behaviours the paper calls out)."""

import pytest

from repro.nobench import (
    EavNoBench,
    NoBenchGenerator,
    PgJsonNoBench,
)

N = 800


@pytest.fixture(scope="module")
def world():
    generator = NoBenchGenerator(N, seed=11)
    documents = list(generator.documents())
    params = generator.params()
    eav = EavNoBench(params)
    eav.load(documents)
    eav.prepare()
    pgjson = PgJsonNoBench(params)
    pgjson.load(documents)
    pgjson.prepare()
    return eav, pgjson, documents, params


class TestEavMappingLayer:
    def test_about_twenty_tuples_per_record(self, world):
        eav, _pg, documents, _params = world
        relation = eav.store.db.table("nobench_main_eav")
        per_record = len(relation) / len(documents)
        # ~9 scalars + 2 nested + 5 array elements + 10 sparse = ~24
        assert 15 <= per_record <= 30

    def test_projection_requires_join(self, world):
        eav, _pg, _docs, _params = world
        plan = eav.store.db.explain(
            "SELECT a.num_val FROM nobench_main_eav a, nobench_main_eav b "
            "WHERE a.oid = b.oid AND a.key_name = 'num' AND b.key_name = 'str1'"
        )
        assert "Join" in plan

    def test_reconstruction_returns_full_objects(self, world):
        eav, _pg, documents, params = world
        result = eav.store.select_objects(
            "nobench_main", "str1", f"b.str_val = '{params.q5_str1}'"
        )
        objects = eav.store.reconstruct(result.rows)
        assert len(objects) == 1
        rebuilt = next(iter(objects.values()))
        original = next(d for d in documents if d["str1"] == params.q5_str1)
        assert rebuilt["str1"] == original["str1"]
        assert rebuilt["num"] == original["num"]
        assert sorted(rebuilt["nested_arr"]) == sorted(original["nested_arr"])

    def test_update_visible_in_subsequent_query(self, world):
        eav, _pg, _docs, params = world
        updated = eav.update()
        check = eav.store.db.execute(
            "SELECT count(*) FROM nobench_main_eav "
            f"WHERE key_name = '{params.update_set_key}' AND str_val = 'DUMMY'"
        )
        assert check.scalar() == updated >= 1


class TestPgJsonBehaviours:
    def test_data_column_opaque_to_optimizer(self, world):
        _eav, pgjson, _docs, params = world
        plan = pgjson.store.db.explain(
            "SELECT id FROM nobench_main "
            f"WHERE json_get_num(data, 'num') BETWEEN {params.q10_low} "
            f"AND {params.q10_high}"
        )
        # ~10% true selectivity, but the plan shows the fixed default
        assert "rows=200" in plan

    def test_q8_like_hack_is_technically_incorrect(self, world):
        """The paper notes the LIKE workaround is approximate: craft a
        document where the term appears in a *different* array to show the
        false positive the real containment predicate would not have."""
        _eav, pgjson, _docs, params = world
        pgjson.store.load(
            "nobench_main",
            [{"other_array": [params.q8_term], "nested_arr": ["clean"]}],
        )
        exact = pgjson.store.query(
            "SELECT id FROM nobench_main "
            f"WHERE json_get_text(data, 'nested_arr') LIKE '%{params.q8_term}%'"
        )
        # the new document's nested_arr does NOT contain the term, and the
        # field-scoped LIKE correctly excludes it...
        new_id = pgjson.store.n_documents("nobench_main") - 1
        assert new_id not in exact.column(0)
        # ...but a whole-document LIKE (what shredding to text invites)
        # would include it -- the approximation the paper flags
        sloppy = pgjson.store.query(
            "SELECT id FROM nobench_main "
            f"WHERE json_get_text(data, 'other_array') LIKE '%{params.q8_term}%'"
        )
        assert new_id in sloppy.column(0)

    def test_update_full_decode_reencode(self, world):
        _eav, pgjson, _docs, params = world
        updated = pgjson.update()
        assert updated >= 1
        check = pgjson.store.query(
            "SELECT count(*) FROM nobench_main "
            f"WHERE json_get_text(data, '{params.update_set_key}') = 'DUMMY'"
        )
        assert check.scalar() >= updated
