"""Unit tests for the cost-based planner (plan shapes, not results)."""

import pytest

from repro.rdbms.database import Database, DatabaseConfig
from repro.rdbms.errors import CatalogError, PlanningError
from repro.rdbms.plan_nodes import (
    Filter,
    GroupAggregate,
    HashAggregate,
    HashJoin,
    MergeJoin,
    NestedLoopJoin,
    SeqScan,
    Sort,
    Unique,
)
from repro.rdbms.sql.parser import parse


def plan_of(db, sql):
    return db._plan(parse(sql))


def nodes_of(plan, node_type):
    return [node for node in plan.walk() if isinstance(node, node_type)]


@pytest.fixture()
def db():
    # serial plans: these tests assert the *serial* operator shapes, which
    # the parallel rewrite would otherwise replace on multi-core machines
    database = Database(
        "plans", DatabaseConfig(work_mem_bytes=32 * 1024, parallel_workers=1)
    )
    database.execute("CREATE TABLE big (id integer, grp integer, label text)")
    database.execute("CREATE TABLE small (id integer, name text)")
    rows = [(i, i % 7, f"l{i % 3}") for i in range(3000)]
    database.insert_rows("big", rows)
    database.insert_rows("small", [(i, f"n{i}") for i in range(20)])
    database.analyze()
    return database


class TestScansAndFilters:
    def test_filter_pushdown_below_join(self, db):
        plan = plan_of(
            db, "SELECT b.id FROM big b, small s WHERE b.id = s.id AND b.grp = 3"
        )
        filters = nodes_of(plan, Filter)
        assert filters, "single-table predicate should become a Filter"
        # the filter sits directly on the scan, not above the join
        assert isinstance(filters[0].child, SeqScan)

    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            plan_of(db, "SELECT x FROM missing")

    def test_unknown_column(self, db):
        with pytest.raises(CatalogError):
            plan_of(db, "SELECT id FROM big WHERE nope = 1")

    def test_ambiguous_column(self, db):
        with pytest.raises(PlanningError, match="ambiguous"):
            plan_of(db, "SELECT name FROM big, small WHERE id = 1")


class TestJoinPlanning:
    def test_small_inner_hash_join(self, db):
        plan = plan_of(db, "SELECT b.id FROM big b, small s WHERE b.id = s.id")
        joins = nodes_of(plan, HashJoin)
        assert joins, "20-row inner fits work_mem: expect a hash join"
        # the small table should be the inner (build) side
        assert any(
            isinstance(scan, SeqScan) and scan.table.name == "small"
            for scan in joins[0].inner.walk()
        )

    def test_large_inner_merge_join(self, db):
        plan = plan_of(db, "SELECT a.id FROM big a, big b WHERE a.id = b.id")
        assert nodes_of(plan, MergeJoin), "3000 wide rows exceed work_mem"

    def test_cartesian_product_nested_loop(self, db):
        plan = plan_of(db, "SELECT b.id FROM big b, small s")
        assert nodes_of(plan, NestedLoopJoin)

    def test_three_way_join_uses_both_edges(self, db):
        plan = plan_of(
            db,
            "SELECT a.id FROM big a, small b, small c "
            "WHERE a.id = b.id AND b.id = c.id",
        )
        n_joins = len(nodes_of(plan, HashJoin)) + len(nodes_of(plan, MergeJoin))
        assert n_joins == 2

    def test_selective_filter_drives_join_order(self, db):
        # With a highly selective filter on big, big becomes the cheap side.
        plan = plan_of(
            db,
            "SELECT b.id FROM big b, small s WHERE b.id = s.id AND b.id = 17",
        )
        joins = nodes_of(plan, HashJoin) + nodes_of(plan, MergeJoin)
        assert joins
        assert plan.est_cost < plan_of(
            db, "SELECT b.id FROM big b, small s WHERE b.id = s.id"
        ).est_cost


class TestAggregateStrategy:
    def test_few_groups_hash(self, db):
        plan = plan_of(db, "SELECT grp, count(*) FROM big GROUP BY grp")
        assert nodes_of(plan, HashAggregate)

    def test_many_groups_sort(self, db):
        plan = plan_of(db, "SELECT id, count(*) FROM big GROUP BY id")
        assert nodes_of(plan, GroupAggregate)
        assert nodes_of(plan, Sort)

    def test_distinct_low_cardinality_hash(self, db):
        plan = plan_of(db, "SELECT DISTINCT grp FROM big")
        assert nodes_of(plan, HashAggregate)

    def test_distinct_high_cardinality_unique(self, db):
        plan = plan_of(db, "SELECT DISTINCT id FROM big")
        assert nodes_of(plan, Unique)

    def test_udf_group_key_defaults_to_hash(self, db):
        # a UDF group key gets the 200-group default -> hash, even though
        # the true cardinality (3000) would overflow work_mem
        db.create_function("f", lambda v: v, return_type=None)
        plan = plan_of(db, "SELECT count(*) FROM big GROUP BY f(id)")
        assert nodes_of(plan, HashAggregate)

    def test_group_by_validation(self, db):
        with pytest.raises(PlanningError, match="GROUP BY"):
            plan_of(db, "SELECT label, count(*) FROM big GROUP BY grp")

    def test_global_aggregate_single_group(self, db):
        plan = plan_of(db, "SELECT count(*), sum(id) FROM big")
        aggregate = nodes_of(plan, HashAggregate)[0]
        assert aggregate.est_rows == 1


class TestOrderByAndLimit:
    def test_order_by_scan_column_sorts_before_projection(self, db):
        plan = plan_of(db, "SELECT id FROM big ORDER BY grp")
        sorts = nodes_of(plan, Sort)
        assert sorts

    def test_order_by_alias(self, db):
        plan = plan_of(db, "SELECT grp, count(*) AS c FROM big GROUP BY grp ORDER BY c DESC")
        assert nodes_of(plan, Sort)

    def test_order_by_unknown_rejected(self, db):
        with pytest.raises((PlanningError, CatalogError)):
            plan_of(db, "SELECT id FROM big ORDER BY nonexistent")

    def test_limit_node(self, db):
        from repro.rdbms.plan_nodes import Limit

        plan = plan_of(db, "SELECT id FROM big LIMIT 5")
        assert nodes_of(plan, Limit)
        assert plan.est_rows <= 5


class TestExplain:
    def test_explain_text_structure(self, db):
        text = db.explain("SELECT grp, count(*) FROM big GROUP BY grp")
        assert "Seq Scan on big" in text
        assert "Aggregate" in text
        assert "rows=" in text

    def test_explain_statement_execution(self, db):
        result = db.execute("EXPLAIN SELECT id FROM big WHERE grp = 1")
        assert result.plan_text is not None
        assert "Filter" in result.plan_text
