"""Tests for the uniform error hierarchy (position/context formatting)."""

import pytest

from repro.analysis.diagnostics import Severity, error, warning
from repro.rdbms.errors import (
    CatalogError,
    ConcurrencyError,
    DatabaseError,
    DiskFullError,
    ExecutionError,
    PlanningError,
    SemanticError,
    SqlSyntaxError,
    TransactionError,
    TypeCastError,
)

ALL_ERRORS = [
    CatalogError,
    ConcurrencyError,
    DatabaseError,
    ExecutionError,
    PlanningError,
    SqlSyntaxError,
    TransactionError,
    TypeCastError,
]


class TestUniformFields:
    @pytest.mark.parametrize("cls", ALL_ERRORS)
    def test_accepts_position_and_context(self, cls):
        exc = cls("boom", position=4, context="while testing")
        assert exc.position == 4
        assert exc.context == "while testing"
        assert str(exc) == "boom (at position 4) [while testing]"

    @pytest.mark.parametrize("cls", ALL_ERRORS)
    def test_plain_message_unchanged(self, cls):
        assert str(cls("boom")) == "boom"
        assert cls("boom").position is None

    def test_position_only(self):
        assert str(SqlSyntaxError("bad token", position=7)) == (
            "bad token (at position 7)"
        )

    def test_disk_full_keeps_budget_fields(self):
        exc = DiskFullError(used_bytes=10, budget_bytes=5)
        assert exc.used_bytes == 10
        assert exc.budget_bytes == 5
        assert "10 bytes used" in str(exc)


class TestSemanticError:
    def test_first_error_drives_message_and_position(self):
        diagnostics = (
            warning("SNW201", "later warning", span=(30, 35)),
            error("SNW104", "no such function: f()", span=(7, 10)),
            error("SNW102", "no such column: 'x'", span=(12, 13)),
        )
        exc = SemanticError(diagnostics)
        assert exc.diagnostics == diagnostics
        assert exc.position == 7
        assert "SNW104" in str(exc)
        assert "+1 more" in str(exc)

    def test_is_planning_error(self):
        exc = SemanticError((error("SNW101", "no such table", span=(0, 1)),))
        assert isinstance(exc, PlanningError)
        assert isinstance(exc, DatabaseError)

    def test_severity_helpers(self):
        diag = error("SNW101", "x")
        assert diag.severity is Severity.ERROR
        assert diag.is_error
