"""Unit tests for the SQL type system."""

import math

import pytest

from repro.rdbms.errors import TypeCastError
from repro.rdbms.types import (
    NullStorageModel,
    SqlType,
    cast_value,
    infer_type,
    is_instance_of,
    null_overhead_bytes,
    type_from_name,
    value_size,
)


class TestTypeFromName:
    def test_canonical_names(self):
        assert type_from_name("text") is SqlType.TEXT
        assert type_from_name("integer") is SqlType.INTEGER
        assert type_from_name("real") is SqlType.REAL
        assert type_from_name("boolean") is SqlType.BOOLEAN
        assert type_from_name("bytea") is SqlType.BYTEA

    def test_aliases(self):
        assert type_from_name("int") is SqlType.INTEGER
        assert type_from_name("bigint") is SqlType.INTEGER
        assert type_from_name("double precision") is SqlType.REAL
        assert type_from_name("varchar") is SqlType.TEXT
        assert type_from_name("bool") is SqlType.BOOLEAN
        assert type_from_name("jsonb") is SqlType.JSON

    def test_case_insensitive(self):
        assert type_from_name("TEXT") is SqlType.TEXT
        assert type_from_name("Integer") is SqlType.INTEGER

    def test_unknown_name_raises(self):
        with pytest.raises(TypeCastError):
            type_from_name("frobnicate")


class TestInferType:
    def test_bool_before_int(self):
        # bool is a subclass of int in Python; the loader must not confuse them
        assert infer_type(True) is SqlType.BOOLEAN
        assert infer_type(1) is SqlType.INTEGER

    def test_scalars(self):
        assert infer_type(3.5) is SqlType.REAL
        assert infer_type("x") is SqlType.TEXT
        assert infer_type(b"x") is SqlType.BYTEA

    def test_containers(self):
        assert infer_type([1, 2]) is SqlType.ARRAY
        assert infer_type({"a": 1}) is SqlType.BYTEA

    def test_null_raises(self):
        with pytest.raises(TypeCastError):
            infer_type(None)

    def test_is_instance_of(self):
        assert is_instance_of(5, SqlType.INTEGER)
        assert not is_instance_of(5, SqlType.TEXT)
        assert not is_instance_of(None, SqlType.TEXT)


class TestCasts:
    def test_null_passes_through_every_cast(self):
        for target in SqlType:
            assert cast_value(None, target) is None

    def test_text_casts(self):
        assert cast_value(12, SqlType.TEXT) == "12"
        assert cast_value(True, SqlType.TEXT) == "true"
        assert cast_value("abc", SqlType.TEXT) == "abc"

    def test_integer_from_string(self):
        assert cast_value("42", SqlType.INTEGER) == 42
        assert cast_value(" 42 ", SqlType.INTEGER) == 42

    def test_integer_malformed_string_raises_like_postgres(self):
        with pytest.raises(TypeCastError, match="invalid input syntax"):
            cast_value("twenty", SqlType.INTEGER)

    def test_integer_from_nan_raises(self):
        with pytest.raises(TypeCastError):
            cast_value(math.nan, SqlType.INTEGER)

    def test_real_casts(self):
        assert cast_value("2.5", SqlType.REAL) == 2.5
        assert cast_value(3, SqlType.REAL) == 3.0
        with pytest.raises(TypeCastError):
            cast_value("abc", SqlType.REAL)

    def test_boolean_literals(self):
        for literal in ("t", "true", "YES", "on", "1"):
            assert cast_value(literal, SqlType.BOOLEAN) is True
        for literal in ("f", "false", "NO", "off", "0"):
            assert cast_value(literal, SqlType.BOOLEAN) is False
        with pytest.raises(TypeCastError):
            cast_value("maybe", SqlType.BOOLEAN)

    def test_boolean_from_int(self):
        assert cast_value(1, SqlType.BOOLEAN) is True
        assert cast_value(0, SqlType.BOOLEAN) is False
        with pytest.raises(TypeCastError):
            cast_value(7, SqlType.BOOLEAN)

    def test_array_cast(self):
        assert cast_value((1, 2), SqlType.ARRAY) == [1, 2]
        with pytest.raises(TypeCastError):
            cast_value("nope", SqlType.ARRAY)


class TestSizeAccounting:
    def test_fixed_width_values(self):
        assert value_size(5, SqlType.INTEGER) == 8
        assert value_size(5.0, SqlType.REAL) == 8
        assert value_size(True, SqlType.BOOLEAN) == 1

    def test_varlena_values(self):
        assert value_size("abcd", SqlType.TEXT) == 4 + 4
        assert value_size(b"abc", SqlType.BYTEA) == 4 + 3

    def test_null_is_free(self):
        assert value_size(None, SqlType.TEXT) == 0

    def test_array_size_includes_elements(self):
        small = value_size([1], SqlType.ARRAY)
        large = value_size([1, 2, 3], SqlType.ARRAY)
        assert large > small

    def test_null_overhead_models(self):
        # InnoDB-style: 2 bytes per attribute (the paper's 300-bytes-per-
        # 150-attribute-tweet arithmetic); Postgres-style: 1 bit.
        assert null_overhead_bytes(150, NullStorageModel.PER_ATTRIBUTE) == 300
        assert null_overhead_bytes(150, NullStorageModel.BITMAP) == 19
        assert null_overhead_bytes(8, NullStorageModel.BITMAP) == 1
        assert null_overhead_bytes(9, NullStorageModel.BITMAP) == 2
