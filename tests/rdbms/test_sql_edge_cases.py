"""SQL edge cases across parser + planner + executor."""

import pytest

from repro.rdbms.database import Database
from repro.rdbms.errors import PlanningError, SqlSyntaxError


@pytest.fixture()
def db():
    database = Database("edge")
    database.execute("CREATE TABLE t (a integer, b text, c real)")
    database.insert_rows(
        "t",
        [(1, "x", 1.5), (2, "y", 2.5), (3, "x", None), (None, "z", 0.5)],
    )
    database.analyze()
    return database


class TestMultiKeyClauses:
    def test_order_by_two_keys(self, db):
        result = db.execute("SELECT b, a FROM t ORDER BY b, a DESC")
        assert result.rows == [
            ("x", 3), ("x", 1), ("y", 2), ("z", None),
        ]

    def test_group_by_two_keys(self, db):
        result = db.execute("SELECT b, a, count(*) FROM t GROUP BY b, a")
        assert len(result.rows) == 4

    def test_having_on_aggregate_expression(self, db):
        result = db.execute(
            "SELECT b, count(*) FROM t GROUP BY b HAVING count(*) >= 2"
        )
        assert result.rows == [("x", 2)]


class TestNullSemantics:
    def test_where_null_comparison_excludes(self, db):
        assert db.execute("SELECT count(*) FROM t WHERE a > 0").scalar() == 3
        assert db.execute("SELECT count(*) FROM t WHERE a IS NULL").scalar() == 1

    def test_aggregate_skips_nulls_count_star_does_not(self, db):
        result = db.execute("SELECT count(*), count(a), count(c) FROM t")
        assert result.rows == [(4, 3, 3)]

    def test_group_by_null_key_forms_group(self, db):
        result = db.execute("SELECT a, count(*) FROM t GROUP BY a")
        assert (None, 1) in result.rows


class TestExpressionsInClauses:
    def test_arithmetic_in_where(self, db):
        result = db.execute("SELECT a FROM t WHERE a * 2 + 1 = 5")
        assert result.rows == [(2,)]

    def test_function_in_projection_and_where(self, db):
        result = db.execute("SELECT upper(b) FROM t WHERE length(b) = 1 AND a = 1")
        assert result.rows == [("X",)]

    def test_insert_with_expressions(self, db):
        db.execute("INSERT INTO t VALUES (2 + 2, 'w' || 'w', 1.0 / 4)")
        result = db.execute("SELECT a, b, c FROM t WHERE b = 'ww'")
        assert result.rows == [(4, "ww", 0.25)]

    def test_between_on_real(self, db):
        result = db.execute("SELECT a FROM t WHERE c BETWEEN 1.0 AND 2.0")
        assert result.rows == [(1,)]

    def test_concat_with_null_is_null(self, db):
        result = db.execute("SELECT b || NULL FROM t WHERE a = 1")
        assert result.rows == [(None,)]


class TestUnsupportedSyntax:
    def test_subquery_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT a FROM t WHERE a IN (SELECT a FROM t)")

    def test_select_without_from(self, db):
        with pytest.raises((PlanningError, SqlSyntaxError)):
            db.execute("SELECT 1")

    def test_window_function_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT a, row_number() OVER () FROM t")


class TestAliases:
    def test_table_alias_everywhere(self, db):
        result = db.execute("SELECT x.a FROM t AS x WHERE x.b = 'y'")
        assert result.rows == [(2,)]

    def test_output_alias_in_order_by(self, db):
        result = db.execute("SELECT a * 10 AS score FROM t WHERE a IS NOT NULL ORDER BY score DESC")
        assert result.column("score") == [30, 20, 10]

    def test_duplicate_binding_rejected(self, db):
        with pytest.raises(PlanningError):
            db.execute("SELECT 1 FROM t x, t x")


class TestDistinctVariants:
    def test_distinct_multi_column(self, db):
        # rows: (x,F), (y,F), (x,F), (z,T) -> three distinct pairs
        result = db.execute("SELECT DISTINCT b, a IS NULL FROM t")
        assert sorted(result.rows) == [("x", False), ("y", False), ("z", True)]

    def test_count_distinct_expression(self, db):
        assert db.execute("SELECT count(DISTINCT b) FROM t").scalar() == 3
