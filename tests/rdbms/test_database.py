"""Tests for the Database facade: DDL, catalog errors, result helpers."""

import pytest

from repro.rdbms.database import Database, QueryResult
from repro.rdbms.errors import CatalogError, TransactionError
from repro.rdbms.types import SqlType


@pytest.fixture()
def db():
    return Database("facade")


class TestDdl:
    def test_create_and_drop(self, db):
        db.execute("CREATE TABLE t (a integer)")
        assert db.has_table("t")
        db.execute("DROP TABLE t")
        assert not db.has_table("t")

    def test_create_duplicate_rejected(self, db):
        db.execute("CREATE TABLE t (a integer)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (a integer)")
        db.execute("CREATE TABLE IF NOT EXISTS t (a integer)")  # no error

    def test_drop_missing(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE ghost")
        db.execute("DROP TABLE IF EXISTS ghost")  # no error

    def test_alter_add_drop_column(self, db):
        db.execute("CREATE TABLE t (a integer)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("ALTER TABLE t ADD COLUMN b text")
        assert db.execute("SELECT b FROM t").rows == [(None,)]
        db.execute("UPDATE t SET b = 'x'")
        db.execute("ALTER TABLE t DROP COLUMN a")
        assert db.execute("SELECT * FROM t").rows == [("x",)]

    def test_programmatic_create(self, db):
        db.create_table("p", [("x", SqlType.INTEGER), ("y", SqlType.TEXT)])
        assert db.table("p").schema.names() == ["x", "y"]


class TestFunctions:
    def test_create_function_and_call(self, db):
        db.execute("CREATE TABLE t (a integer)")
        db.insert_rows("t", [(1,), (2,)])
        db.create_function("double_it", lambda v: None if v is None else v * 2, SqlType.INTEGER)
        result = db.execute("SELECT double_it(a) FROM t")
        assert result.column(0) == [2, 4]

    def test_unknown_function(self, db):
        db.execute("CREATE TABLE t (a integer)")
        db.insert_rows("t", [(1,)])
        with pytest.raises(CatalogError, match="no such function"):
            db.execute("SELECT ghost(a) FROM t")


class TestResults:
    def test_scalar_and_column(self):
        result = QueryResult(columns=["a", "b"], rows=[(1, "x"), (2, "y")])
        assert result.scalar() == 1
        assert result.column("b") == ["x", "y"]
        assert result.column(0) == [1, 2]
        assert len(result) == 2
        assert list(result) == [(1, "x"), (2, "y")]

    def test_empty_scalar(self):
        assert QueryResult().scalar() is None


class TestTransactionErrors:
    def test_commit_without_begin(self, db):
        with pytest.raises(TransactionError):
            db.execute("COMMIT")

    def test_nested_begin_rejected(self, db):
        db.execute("BEGIN")
        with pytest.raises(TransactionError):
            db.execute("BEGIN")
        db.execute("ROLLBACK")


class TestIntrospection:
    def test_total_table_bytes(self, db):
        db.execute("CREATE TABLE t (a text)")
        assert db.total_table_bytes() == 0
        db.insert_rows("t", [("hello",)] * 10)
        assert db.total_table_bytes() == db.table("t").total_bytes > 0

    def test_stats_lifecycle(self, db):
        db.execute("CREATE TABLE t (a integer)")
        assert db.stats("t") is None
        db.insert_rows("t", [(i,) for i in range(10)])
        db.execute("ANALYZE t")
        assert db.stats("t").row_count == 10
        db.execute("DROP TABLE t")
        assert db.stats("t") is None
