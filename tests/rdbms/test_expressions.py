"""Unit tests for expression evaluation (three-valued logic)."""

import pytest

from repro.rdbms.errors import ExecutionError, TypeCastError
from repro.rdbms.expressions import (
    SchemaResolver,
    compile_expr,
    contains_function_call,
    like_to_regex,
    referenced_columns,
)
from repro.rdbms.functions import FunctionRegistry
from repro.rdbms.sql.parser import parse_expression
from repro.rdbms.types import SqlType

SCHEMA = [(None, "a"), (None, "b"), (None, "s"), (None, "arr"), (None, "flag")]


def evaluate(sql: str, row: tuple):
    registry = FunctionRegistry()
    resolver = SchemaResolver(SCHEMA, registry)
    return compile_expr(parse_expression(sql), resolver)(row)


class TestComparisons:
    def test_basic(self):
        assert evaluate("a < b", (1, 2, None, None, None)) is True
        assert evaluate("a >= b", (3, 2, None, None, None)) is True
        assert evaluate("a = b", (2, 2, None, None, None)) is True
        assert evaluate("a <> b", (2, 2, None, None, None)) is False

    def test_null_propagates(self):
        assert evaluate("a < b", (None, 2, None, None, None)) is None
        assert evaluate("a = b", (1, None, None, None, None)) is None

    def test_cross_type_numeric_ok(self):
        assert evaluate("a = b", (1, 1.0, None, None, None)) is True

    def test_cross_type_string_number_bracketed(self):
        # typed bracketing: '5' is not 5 for equality; ordering is UNKNOWN
        assert evaluate("a = s", (5, None, "5", None, None)) is False
        assert evaluate("a < s", (5, None, "5", None, None)) is None


class TestLogic:
    def test_kleene_and(self):
        assert evaluate("a = 1 AND b = 2", (1, 2, None, None, None)) is True
        assert evaluate("a = 1 AND b = 2", (0, 2, None, None, None)) is False
        # FALSE AND UNKNOWN = FALSE
        assert evaluate("a = 1 AND b = 2", (0, None, None, None, None)) is False
        # TRUE AND UNKNOWN = UNKNOWN
        assert evaluate("a = 1 AND b = 2", (1, None, None, None, None)) is None

    def test_kleene_or(self):
        assert evaluate("a = 1 OR b = 2", (0, None, None, None, None)) is None
        assert evaluate("a = 1 OR b = 2", (1, None, None, None, None)) is True

    def test_not(self):
        assert evaluate("NOT a = 1", (1, 0, None, None, None)) is False
        assert evaluate("NOT a = 1", (None, 0, None, None, None)) is None


class TestArithmetic:
    def test_operations(self):
        assert evaluate("a + b * 2", (1, 3, None, None, None)) == 7
        assert evaluate("a - b", (1, 3, None, None, None)) == -2
        assert evaluate("a % b", (7, 3, None, None, None)) == 1

    def test_integer_division_stays_exact(self):
        assert evaluate("a / b", (6, 3, None, None, None)) == 2
        assert evaluate("a / b", (7, 2, None, None, None)) == 3.5

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            evaluate("a / b", (1, 0, None, None, None))

    def test_null_propagates(self):
        assert evaluate("a + b", (None, 1, None, None, None)) is None

    def test_concat(self):
        assert evaluate("s || s", (None, None, "ab", None, None)) == "abab"

    def test_non_numeric_operand_raises(self):
        with pytest.raises(ExecutionError):
            evaluate("s + a", (1, None, "x", None, None))


class TestPredicates:
    def test_between(self):
        assert evaluate("a BETWEEN 1 AND 3", (2, None, None, None, None)) is True
        assert evaluate("a BETWEEN 1 AND 3", (4, None, None, None, None)) is False
        assert evaluate("a NOT BETWEEN 1 AND 3", (4, None, None, None, None)) is True
        assert evaluate("a BETWEEN 1 AND 3", (None, None, None, None, None)) is None

    def test_in_list(self):
        assert evaluate("a IN (1, 2)", (2, None, None, None, None)) is True
        assert evaluate("a IN (1, 2)", (3, None, None, None, None)) is False
        assert evaluate("a NOT IN (1, 2)", (3, None, None, None, None)) is True
        # NULL in the list makes a non-match UNKNOWN
        assert evaluate("a IN (1, NULL)", (3, None, None, None, None)) is None

    def test_like(self):
        row = (None, None, "hello world", None, None)
        assert evaluate("s LIKE 'hello%'", row) is True
        assert evaluate("s LIKE '%world'", row) is True
        assert evaluate("s LIKE 'h_llo%'", row) is True
        assert evaluate("s NOT LIKE 'bye%'", row) is True
        assert evaluate("s LIKE 'hello'", row) is False

    def test_like_escapes_regex_chars(self):
        assert evaluate("s LIKE 'a.c'", (None, None, "abc", None, None)) is False
        assert evaluate("s LIKE 'a.c'", (None, None, "a.c", None, None)) is True

    def test_is_null(self):
        assert evaluate("s IS NULL", (None, None, None, None, None)) is True
        assert evaluate("s IS NOT NULL", (None, None, "x", None, None)) is True

    def test_any_predicate(self):
        row = (None, None, None, ["x", "y"], None)
        assert evaluate("'x' = ANY(arr)", row) is True
        assert evaluate("'z' = ANY(arr)", row) is False
        assert evaluate("'z' = ANY(arr)", (None, None, None, None, None)) is None


class TestCoalesceAndCast:
    def test_coalesce_picks_first_non_null(self):
        assert evaluate("COALESCE(s, 'fallback')", (None, None, None, None, None)) == (
            "fallback"
        )
        assert evaluate("COALESCE(s, 'fallback')", (None, None, "v", None, None)) == "v"

    def test_coalesce_is_lazy(self):
        registry = FunctionRegistry()
        calls = []

        def expensive(value):
            calls.append(1)
            return "expensive"

        registry.register_scalar("expensive", expensive, SqlType.TEXT)
        resolver = SchemaResolver(SCHEMA, registry)
        fn = compile_expr(parse_expression("COALESCE(s, expensive(s))"), resolver)
        assert fn((None, None, "present", None, None)) == "present"
        assert calls == []  # the UDF never ran

    def test_cast(self):
        assert evaluate("s::integer", (None, None, "42", None, None)) == 42
        with pytest.raises(TypeCastError):
            evaluate("s::integer", (None, None, "forty-two", None, None))


class TestHelpers:
    def test_contains_function_call(self):
        assert contains_function_call(parse_expression("f(a) > 1"))
        assert not contains_function_call(parse_expression("a > 1"))

    def test_referenced_columns(self):
        refs = referenced_columns(parse_expression("a + t.b * 2"))
        assert [(r.table, r.name) for r in refs] == [(None, "a"), ("t", "b")]

    def test_like_to_regex(self):
        assert like_to_regex("a%b_").match("aXXbY")
        assert not like_to_regex("a%b_").match("aXXb")

    def test_resolver_ambiguity(self):
        resolver = SchemaResolver([("t1", "x"), ("t2", "x")], FunctionRegistry())
        with pytest.raises(ExecutionError, match="ambiguous"):
            compile_expr(parse_expression("x = 1"), resolver)

    def test_resolver_qualified(self):
        resolver = SchemaResolver([("t1", "x"), ("t2", "x")], FunctionRegistry())
        fn = compile_expr(parse_expression("t2.x"), resolver)
        assert fn((1, 2)) == 2

    def test_resolver_missing(self):
        resolver = SchemaResolver([("t1", "x")], FunctionRegistry())
        with pytest.raises(ExecutionError, match="no such column"):
            compile_expr(parse_expression("zzz"), resolver)


class TestUdfCounting:
    def test_udf_calls_counted(self):
        from repro.rdbms.cost import CostCounters

        counters = CostCounters()
        registry = FunctionRegistry(counters)
        registry.register_scalar("f", lambda v: v, SqlType.TEXT)
        resolver = SchemaResolver(SCHEMA, registry)
        fn = compile_expr(parse_expression("f(s)"), resolver)
        for _ in range(5):
            fn((None, None, "x", None, None))
        assert counters.udf_calls == 5

    def test_builtins_not_counted(self):
        from repro.rdbms.cost import CostCounters

        counters = CostCounters()
        registry = FunctionRegistry(counters)
        resolver = SchemaResolver(SCHEMA, registry)
        fn = compile_expr(parse_expression("length(s)"), resolver)
        fn((None, None, "x", None, None))
        assert counters.udf_calls == 0
