"""Unit tests for the SQL tokenizer."""

import pytest

from repro.rdbms.errors import SqlSyntaxError
from repro.rdbms.sql.lexer import TokenType, tokenize


def kinds(sql: str) -> list[tuple[TokenType, str]]:
    return [(t.type, t.value) for t in tokenize(sql) if t.type is not TokenType.EOF]


class TestBasics:
    def test_keywords_are_case_folded(self):
        assert kinds("SELECT Select select")[0] == (TokenType.KEYWORD, "select")
        assert all(value == "select" for _t, value in kinds("SELECT Select select"))

    def test_identifiers_fold_but_quoted_preserve(self):
        tokens = kinds('MyTable "User.Id"')
        assert tokens[0] == (TokenType.IDENT, "mytable")
        assert tokens[1] == (TokenType.QIDENT, "User.Id")

    def test_quoted_identifier_keeps_dots(self):
        tokens = kinds('"delete.status.id_str"')
        assert tokens == [(TokenType.QIDENT, "delete.status.id_str")]

    def test_numbers(self):
        assert kinds("1 2.5 1e3 1.5e-2 .5") == [
            (TokenType.NUMBER, "1"),
            (TokenType.NUMBER, "2.5"),
            (TokenType.NUMBER, "1e3"),
            (TokenType.NUMBER, "1.5e-2"),
            (TokenType.NUMBER, ".5"),
        ]

    def test_strings_with_escaped_quotes(self):
        tokens = kinds("'it''s'")
        assert tokens == [(TokenType.STRING, "it's")]

    def test_operators_longest_match(self):
        values = [value for _t, value in kinds("a <> b <= c >= d != e :: f || g")]
        assert "<>" in values and "<=" in values and ">=" in values
        assert "!=" in values and "::" in values and "||" in values

    def test_comments_are_skipped(self):
        tokens = kinds("SELECT 1 -- trailing comment\n + 2")
        assert (TokenType.NUMBER, "2") in tokens

    def test_punct(self):
        assert kinds("(a, b);")[0] == (TokenType.PUNCT, "(")


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('"oops')

    def test_empty_quoted_identifier(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('""')

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError) as info:
            tokenize("SELECT @")
        assert info.value.position == 7


class TestTokenSpans:
    def test_every_token_spans_its_source_text(self):
        sql = "SELECT a, \"q.k\" FROM t WHERE b >= 'x y' AND n = 1.5"
        for token in tokenize(sql)[:-1]:
            start, end = token.span
            assert 0 <= start < end <= len(sql)
            if token.type in (TokenType.STRING, TokenType.QIDENT):
                # quoted forms: the span covers the quotes too
                assert sql[start] in "'\""
                assert sql[end - 1] in "'\""
            else:
                assert sql[start:end].lower() == token.value

    def test_eof_token_span(self):
        tokens = tokenize("SELECT 1")
        assert tokens[-1].span == (8, 8)

    def test_string_span_starts_at_quote(self):
        sql = "SELECT 'hello'"
        token = tokenize(sql)[1]
        assert token.span == (7, 14)
        assert token.position == 7
