"""Property test: expression rendering and parsing are inverse.

Every expression node renders itself as SQL (``__str__``); the parser must
read that text back into a structurally identical tree.  This pins down
operator precedence, quoting of identifiers with dots, and string-literal
escaping -- the exact machinery Sinew's rewriter depends on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdbms.expressions import (
    Between,
    BinaryOp,
    Coalesce,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.rdbms.sql.parser import parse_expression

_literals = st.one_of(
    st.integers(min_value=0, max_value=10**9),
    st.booleans(),
    st.text(max_size=15).filter(lambda s: "\x00" not in s),
    st.none(),
).map(Literal)

_plain_names = st.from_regex(r"[a-z_][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda name: name
    not in {
        "select", "from", "where", "group", "by", "having", "order", "and",
        "or", "not", "in", "like", "between", "is", "null", "true", "false",
        "as", "asc", "desc", "limit", "distinct", "cast", "any", "coalesce",
        "insert", "into", "values", "update", "set", "delete", "create",
        "table", "drop", "alter", "add", "column", "if", "exists", "analyze",
        "explain", "join", "inner", "left", "on", "begin", "commit",
        "rollback",
    }
)
_dotted_names = st.from_regex(r"[a-z_][a-z0-9_]{0,6}(\.[a-z][a-z0-9_]{0,6}){1,2}", fullmatch=True)

_column_refs = st.one_of(
    _plain_names.map(lambda name: ColumnRef(None, name)),
    _dotted_names.map(lambda name: ColumnRef(None, name)),
    st.tuples(_plain_names, _plain_names).map(
        lambda pair: ColumnRef(pair[0], pair[1])
    ),
)

_comparison_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
_arith_ops = st.sampled_from(["+", "-", "*", "/", "%", "||"])


def _expressions() -> st.SearchStrategy[Expr]:
    base = st.one_of(_literals, _column_refs)

    def extend(children: st.SearchStrategy[Expr]) -> st.SearchStrategy[Expr]:
        return st.one_of(
            st.tuples(_comparison_ops, children, children).map(
                lambda t: BinaryOp(t[0], t[1], t[2])
            ),
            st.tuples(_arith_ops, children, children).map(
                lambda t: BinaryOp(t[0], t[1], t[2])
            ),
            st.tuples(children, children).map(
                lambda t: BinaryOp("AND", t[0], t[1])
            ),
            st.tuples(children, children).map(lambda t: BinaryOp("OR", t[0], t[1])),
            children.map(lambda c: UnaryOp("NOT", c)),
            st.tuples(children, st.booleans()).map(
                lambda t: IsNull(t[0], t[1])
            ),
            st.tuples(children, children, children, st.booleans()).map(
                lambda t: Between(t[0], t[1], t[2], t[3])
            ),
            st.tuples(children, st.lists(children, min_size=1, max_size=3), st.booleans()).map(
                lambda t: InList(t[0], tuple(t[1]), t[2])
            ),
            st.tuples(children, st.booleans()).map(
                lambda t: Like(t[0], Literal("a%b_"), t[1])
            ),
            st.tuples(_plain_names, st.lists(children, max_size=3)).map(
                lambda t: FunctionCall(t[0], tuple(t[1]))
            ),
            st.lists(children, min_size=1, max_size=3).map(
                lambda args: Coalesce(tuple(args))
            ),
        )

    return st.recursive(base, extend, max_leaves=12)


class TestRenderParseRoundTrip:
    @given(_expressions())
    @settings(max_examples=300, deadline=None)
    def test_parse_of_rendered_equals_original(self, expr):
        rendered = str(expr)
        reparsed = parse_expression(rendered)
        assert reparsed == expr, rendered

    @given(st.text(max_size=30))
    @settings(max_examples=150, deadline=None)
    def test_string_literals_escape_correctly(self, value):
        if "\x00" in value:
            return
        rendered = str(Literal(value))
        assert parse_expression(rendered) == Literal(value)

    @given(_dotted_names)
    @settings(max_examples=60, deadline=None)
    def test_dotted_identifiers_quote_correctly(self, name):
        expr = ColumnRef(None, name)
        assert parse_expression(str(expr)) == expr
