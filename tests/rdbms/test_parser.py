"""Unit tests for the SQL parser."""

import pytest

from repro.rdbms.errors import SqlSyntaxError
from repro.rdbms.expressions import (
    AnyPredicate,
    Between,
    BinaryOp,
    Cast,
    Coalesce,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Star,
    UnaryOp,
)
from repro.rdbms.sql.ast import (
    AlterTableStatement,
    AnalyzeStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    ExplainStatement,
    InsertStatement,
    SelectStatement,
    UpdateStatement,
)
from repro.rdbms.sql.parser import parse, parse_expression
from repro.rdbms.types import SqlType


class TestSelect:
    def test_minimal(self):
        statement = parse("SELECT a FROM t")
        assert isinstance(statement, SelectStatement)
        assert statement.items[0].expr == ColumnRef(None, "a")
        assert statement.from_tables[0].name == "t"

    def test_star_and_qualified_star(self):
        statement = parse("SELECT *, t.* FROM t")
        assert statement.items[0].expr == Star()
        assert statement.items[1].expr == Star("t")

    def test_aliases(self):
        statement = parse("SELECT a AS x, b y FROM t AS u")
        assert statement.items[0].alias == "x"
        assert statement.items[1].alias == "y"
        assert statement.from_tables[0].alias == "u"
        assert statement.from_tables[0].binding == "u"

    def test_quoted_identifier_column(self):
        statement = parse('SELECT "user.id" FROM tweets')
        assert statement.items[0].expr == ColumnRef(None, "user.id")

    def test_qualified_quoted_column(self):
        statement = parse('SELECT t1."user.lang" FROM tweets t1')
        assert statement.items[0].expr == ColumnRef("t1", "user.lang")

    def test_comma_join_merges_predicates(self):
        statement = parse(
            "SELECT a FROM t1, t2 WHERE t1.x = t2.y AND t1.z > 3"
        )
        assert len(statement.from_tables) == 2
        assert isinstance(statement.where, BinaryOp)

    def test_explicit_join_on(self):
        statement = parse("SELECT a FROM t1 JOIN t2 ON t1.x = t2.y WHERE t1.z = 1")
        assert len(statement.from_tables) == 2
        # the ON condition is folded into WHERE as a conjunct
        assert isinstance(statement.where, BinaryOp)
        assert statement.where.op == "AND"

    def test_inner_join_keyword(self):
        statement = parse("SELECT a FROM t1 INNER JOIN t2 ON t1.x = t2.y")
        assert len(statement.from_tables) == 2

    def test_group_by_having_order_limit(self):
        statement = parse(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2 "
            "ORDER BY a DESC LIMIT 5"
        )
        assert statement.group_by == (ColumnRef(None, "a"),)
        assert statement.having is not None
        assert statement.order_by[0].ascending is False
        assert statement.limit == 5

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct is True

    def test_trailing_semicolon_ok(self):
        parse("SELECT a FROM t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t garbage extra")


class TestExpressions:
    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_precedence_logic(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, BinaryOp) and expr.op == "OR"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "AND"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, UnaryOp) and expr.op == "NOT"

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 10")
        assert expr == Between(ColumnRef(None, "x"), Literal(1), Literal(10))

    def test_not_between(self):
        expr = parse_expression("x NOT BETWEEN 1 AND 10")
        assert isinstance(expr, Between) and expr.negated

    def test_in_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, InList) and len(expr.items) == 3

    def test_like(self):
        expr = parse_expression("name LIKE 'a%'")
        assert isinstance(expr, Like)

    def test_is_null_and_is_not_null(self):
        assert parse_expression("x IS NULL") == IsNull(ColumnRef(None, "x"))
        assert parse_expression("x IS NOT NULL") == IsNull(
            ColumnRef(None, "x"), negated=True
        )

    def test_any_predicate(self):
        expr = parse_expression("'tag' = ANY(nested_arr)")
        assert expr == AnyPredicate(Literal("tag"), ColumnRef(None, "nested_arr"))

    def test_coalesce(self):
        expr = parse_expression("COALESCE(a, extract_key_text(data, 'a'))")
        assert isinstance(expr, Coalesce)
        assert isinstance(expr.args[1], FunctionCall)

    def test_cast_and_double_colon(self):
        assert parse_expression("CAST(x AS integer)") == Cast(
            ColumnRef(None, "x"), SqlType.INTEGER
        )
        assert parse_expression("x::text") == Cast(ColumnRef(None, "x"), SqlType.TEXT)

    def test_function_distinct_and_star(self):
        expr = parse_expression("count(DISTINCT a)")
        assert isinstance(expr, FunctionCall) and expr.distinct
        expr = parse_expression("count(*)")
        assert expr.args == (Star(),)

    def test_literals(self):
        assert parse_expression("NULL") == Literal(None)
        assert parse_expression("true") == Literal(True)
        assert parse_expression("false") == Literal(False)
        assert parse_expression("1.5") == Literal(1.5)
        assert parse_expression("'x'") == Literal("x")

    def test_unary_minus(self):
        expr = parse_expression("-x")
        assert isinstance(expr, UnaryOp) and expr.op == "-"

    def test_parenthesized(self):
        expr = parse_expression("(1 + 2) * 3")
        assert isinstance(expr, BinaryOp) and expr.op == "*"


class TestDml:
    def test_insert_values(self):
        statement = parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(statement, InsertStatement)
        assert statement.columns is None
        assert len(statement.rows) == 2

    def test_insert_with_columns(self):
        statement = parse("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert statement.columns == ("a", "b")

    def test_update(self):
        statement = parse("UPDATE t SET a = 1, b = 'x' WHERE c > 0")
        assert isinstance(statement, UpdateStatement)
        assert len(statement.assignments) == 2
        assert statement.where is not None

    def test_update_quoted_column(self):
        statement = parse("UPDATE test SET sparse_588 = 'DUMMY' "
                          "WHERE sparse_589 = 'GBRDCMBQGA======'")
        assert statement.assignments[0][0] == "sparse_588"

    def test_delete(self):
        statement = parse("DELETE FROM t WHERE a = 1")
        assert isinstance(statement, DeleteStatement)


class TestDdl:
    def test_create_table(self):
        statement = parse(
            "CREATE TABLE t (a integer, b text, c double precision, d bool)"
        )
        assert isinstance(statement, CreateTableStatement)
        types = [c.sql_type for c in statement.columns]
        assert types == [SqlType.INTEGER, SqlType.TEXT, SqlType.REAL, SqlType.BOOLEAN]

    def test_create_table_if_not_exists(self):
        assert parse("CREATE TABLE IF NOT EXISTS t (a int)").if_not_exists

    def test_drop_table(self):
        statement = parse("DROP TABLE IF EXISTS t")
        assert isinstance(statement, DropTableStatement) and statement.if_exists

    def test_alter_add_and_drop(self):
        add = parse("ALTER TABLE t ADD COLUMN x real")
        assert isinstance(add, AlterTableStatement)
        assert (add.action, add.column_name, add.sql_type) == ("add", "x", SqlType.REAL)
        drop = parse("ALTER TABLE t DROP COLUMN x")
        assert (drop.action, drop.column_name) == ("drop", "x")

    def test_analyze(self):
        assert isinstance(parse("ANALYZE"), AnalyzeStatement)
        assert parse("ANALYZE t").table == "t"

    def test_explain(self):
        statement = parse("EXPLAIN SELECT a FROM t")
        assert isinstance(statement, ExplainStatement)
        assert isinstance(statement.inner, SelectStatement)


class TestErrors:
    def test_unknown_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse("FROBNICATE t")

    def test_missing_from_table_name(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM WHERE x = 1")

    def test_bad_expression(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("1 +")

    def test_non_keyword_start(self):
        with pytest.raises(SqlSyntaxError):
            parse("42")


class TestExpressionSpans:
    def test_comparison_span_covers_predicate(self):
        sql = "SELECT url FROM t WHERE hits > 20"
        statement = parse(sql)
        start, end = statement.where.span
        assert sql[start:end] == "hits > 20"

    def test_column_ref_span(self):
        sql = "SELECT url FROM t"
        statement = parse(sql)
        start, end = statement.items[0].expr.span
        assert sql[start:end] == "url"

    def test_function_call_span(self):
        sql = "SELECT length(url) FROM t"
        statement = parse(sql)
        start, end = statement.items[0].expr.span
        assert sql[start:end] == "length(url)"

    def test_table_ref_span(self):
        sql = "SELECT a FROM long_table_name"
        statement = parse(sql)
        start, end = statement.from_tables[0].span
        assert sql[start:end] == "long_table_name"

    def test_spans_do_not_affect_equality(self):
        with_span = parse("SELECT a FROM t WHERE a = 1")
        spaced = parse("SELECT  a  FROM t WHERE  a  =  1")
        assert with_span.where == spaced.where
        assert hash(with_span.where) == hash(spaced.where)
