"""End-to-end SQL execution tests (parser -> planner -> executor)."""

import pytest

from repro.rdbms.database import Database, DatabaseConfig
from repro.rdbms.errors import DiskFullError, ExecutionError


@pytest.fixture()
def db():
    database = Database("exec")
    database.execute("CREATE TABLE emp (id integer, dept text, salary integer, boss integer)")
    rows = [
        (1, "eng", 100, None),
        (2, "eng", 80, 1),
        (3, "sales", 60, 1),
        (4, "sales", 70, 3),
        (5, "hr", None, 1),
    ]
    database.insert_rows("emp", rows)
    database.execute("CREATE TABLE dept (name text, floor integer)")
    database.insert_rows("dept", [("eng", 2), ("sales", 1), ("ops", 3)])
    database.analyze()
    return database


class TestSelect:
    def test_projection_and_filter(self, db):
        result = db.execute("SELECT id FROM emp WHERE salary > 65")
        assert sorted(row[0] for row in result.rows) == [1, 2, 4]

    def test_null_never_matches(self, db):
        result = db.execute("SELECT id FROM emp WHERE salary < 1000000")
        assert 5 not in [row[0] for row in result.rows]

    def test_expressions_in_projection(self, db):
        result = db.execute("SELECT id, salary * 2 FROM emp WHERE id = 1")
        assert result.rows == [(1, 200)]

    def test_order_by_asc_desc_null_placement(self, db):
        # PostgreSQL defaults: NULLS LAST ascending, NULLS FIRST descending
        ascending = db.execute("SELECT id FROM emp ORDER BY salary").column(0)
        assert ascending == [3, 4, 2, 1, 5]  # NULL sorts last
        descending = db.execute("SELECT id FROM emp ORDER BY salary DESC").column(0)
        assert descending == [5, 1, 2, 4, 3]  # NULL sorts first

    def test_order_by_text_desc(self, db):
        labels = db.execute("SELECT DISTINCT dept FROM emp ORDER BY dept DESC").column(0)
        assert labels == ["sales", "hr", "eng"]

    def test_limit(self, db):
        result = db.execute("SELECT id FROM emp ORDER BY id LIMIT 2")
        assert result.column(0) == [1, 2]

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT dept FROM emp")
        assert sorted(result.column(0)) == ["eng", "hr", "sales"]

    def test_in_and_between(self, db):
        result = db.execute("SELECT id FROM emp WHERE dept IN ('eng', 'hr')")
        assert sorted(result.column(0)) == [1, 2, 5]
        result = db.execute("SELECT id FROM emp WHERE salary BETWEEN 60 AND 80")
        assert sorted(result.column(0)) == [2, 3, 4]

    def test_star(self, db):
        result = db.execute("SELECT * FROM dept")
        assert result.columns == ["name", "floor"]
        assert len(result.rows) == 3


class TestAggregates:
    def test_global_aggregates(self, db):
        result = db.execute(
            "SELECT count(*), count(salary), sum(salary), min(salary), max(salary), avg(salary) FROM emp"
        )
        assert result.rows == [(5, 4, 310, 60, 100, 77.5)]

    def test_group_by(self, db):
        result = db.execute(
            "SELECT dept, count(*), sum(salary) FROM emp GROUP BY dept"
        )
        by_dept = {row[0]: (row[1], row[2]) for row in result.rows}
        assert by_dept == {"eng": (2, 180), "sales": (2, 130), "hr": (1, None)}

    def test_count_distinct(self, db):
        result = db.execute("SELECT count(DISTINCT dept) FROM emp")
        assert result.scalar() == 3

    def test_having(self, db):
        result = db.execute(
            "SELECT dept FROM emp GROUP BY dept HAVING count(*) > 1"
        )
        assert sorted(result.column(0)) == ["eng", "sales"]

    def test_group_by_expression(self, db):
        result = db.execute(
            "SELECT salary % 2, count(*) FROM emp WHERE salary IS NOT NULL "
            "GROUP BY salary % 2"
        )
        assert dict(result.rows) == {0: 4}

    def test_aggregate_of_expression(self, db):
        result = db.execute("SELECT sum(salary + 1) FROM emp")
        assert result.scalar() == 314


class TestJoins:
    def test_equi_join(self, db):
        result = db.execute(
            "SELECT e.id, d.floor FROM emp e, dept d WHERE e.dept = d.name"
        )
        assert sorted(result.rows) == [(1, 2), (2, 2), (3, 1), (4, 1)]

    def test_join_keyword_syntax(self, db):
        result = db.execute(
            "SELECT e.id FROM emp e JOIN dept d ON e.dept = d.name WHERE d.floor = 2"
        )
        assert sorted(result.column(0)) == [1, 2]

    def test_self_join(self, db):
        result = db.execute(
            "SELECT a.id, b.id FROM emp a, emp b WHERE a.boss = b.id"
        )
        assert sorted(result.rows) == [(2, 1), (3, 1), (4, 3), (5, 1)]

    def test_three_way_join(self, db):
        result = db.execute(
            "SELECT a.id FROM emp a, emp b, dept d "
            "WHERE a.boss = b.id AND b.dept = d.name AND d.floor = 2"
        )
        assert sorted(result.column(0)) == [2, 3, 5]

    def test_join_null_keys_dropped(self, db):
        # employee 1 has NULL boss: never matches
        result = db.execute("SELECT a.id FROM emp a, emp b WHERE a.boss = b.id")
        assert 1 not in result.column(0)

    def test_cartesian(self, db):
        result = db.execute("SELECT e.id FROM emp e, dept d")
        assert len(result.rows) == 15


class TestDml:
    def test_update_with_expression(self, db):
        db.execute("UPDATE emp SET salary = salary + 10 WHERE dept = 'eng'")
        result = db.execute("SELECT sum(salary) FROM emp WHERE dept = 'eng'")
        assert result.scalar() == 200

    def test_update_reads_pre_image(self, db):
        # swap-like update must evaluate RHS against the old row
        db.execute("UPDATE emp SET salary = boss, boss = salary WHERE id = 2")
        result = db.execute("SELECT salary, boss FROM emp WHERE id = 2")
        assert result.rows == [(1, 80)]

    def test_delete(self, db):
        deleted = db.execute("DELETE FROM emp WHERE dept = 'sales'")
        assert deleted.rowcount == 2
        assert db.execute("SELECT count(*) FROM emp").scalar() == 3

    def test_delete_all(self, db):
        db.execute("DELETE FROM emp")
        assert db.execute("SELECT count(*) FROM emp").scalar() == 0

    def test_insert_via_sql(self, db):
        db.execute("INSERT INTO dept VALUES ('legal', 4)")
        assert db.execute("SELECT count(*) FROM dept").scalar() == 4

    def test_insert_arity_mismatch(self, db):
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO dept VALUES ('legal')")


class TestTransactionsViaSql:
    def test_rollback_undoes_changes(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE emp SET salary = 0")
        db.execute("INSERT INTO dept VALUES ('x', 9)")
        db.execute("ROLLBACK")
        assert db.execute("SELECT sum(salary) FROM emp").scalar() == 310
        assert db.execute("SELECT count(*) FROM dept").scalar() == 3

    def test_commit_persists(self, db):
        db.execute("BEGIN")
        db.execute("DELETE FROM emp WHERE id = 5")
        db.execute("COMMIT")
        assert db.execute("SELECT count(*) FROM emp").scalar() == 4


class TestSpillAccounting:
    def test_sort_spill_charges_disk(self):
        database = Database(
            "spill", DatabaseConfig(work_mem_bytes=4096, disk_budget_bytes=None)
        )
        database.execute("CREATE TABLE t (id integer, payload text)")
        database.insert_rows("t", [(i, "x" * 100) for i in range(2000)])
        database.execute("SELECT id FROM t ORDER BY payload")
        assert database.counters.spill_bytes > 0

    def test_disk_budget_kills_big_sort(self):
        database = Database(
            "spill2",
            DatabaseConfig(work_mem_bytes=4096, disk_budget_bytes=600_000),
        )
        database.execute("CREATE TABLE t (id integer, payload text)")
        database.insert_rows("t", [(i, "x" * 100) for i in range(2000)])
        with pytest.raises(DiskFullError):
            database.execute(
                "SELECT a.id FROM t a, t b WHERE a.payload = b.payload ORDER BY a.id"
            )
