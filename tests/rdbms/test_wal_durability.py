"""Unit tests for the durable WAL: framing, segments, checkpointing,
recovery, and the fault-injection points that make crashes testable."""

import pytest

from repro.rdbms.database import Database, DatabaseConfig
from repro.rdbms.errors import RecoveryError, TransactionError
from repro.rdbms.transactions import (
    WalRecord,
    WalRecordType,
    decode_frames,
    encode_frame,
    scan_wal,
)
from repro.testing.faults import FaultInjector, InjectedFault


def durable_db(path, **overrides):
    config = DatabaseConfig(**overrides)
    return Database("dur", config, path=path)


def make_record(lsn, txn_id=7, record_type=WalRecordType.INSERT, payload=None):
    return WalRecord(
        lsn=lsn,
        txn_id=txn_id,
        record_type=record_type,
        table="t",
        rid=lsn - 1,
        payload_bytes=10,
        payload=payload,
    )


class TestFrameCodec:
    def test_roundtrip(self):
        record = make_record(3, payload=(1, b"abc", None))
        decoded, torn = decode_frames(encode_frame(record))
        assert torn is None
        assert decoded == [record]

    def test_multiple_frames_in_order(self):
        frames = b"".join(encode_frame(make_record(i)) for i in range(1, 6))
        decoded, torn = decode_frames(frames)
        assert torn is None
        assert [r.lsn for r in decoded] == [1, 2, 3, 4, 5]

    @pytest.mark.parametrize("cut", [1, 4, 7, 8, 12])
    def test_torn_tail_detected_at_frame_boundary(self, cut):
        whole = encode_frame(make_record(1))
        torn_frame = encode_frame(make_record(2))[:cut]
        decoded, torn = decode_frames(whole + torn_frame)
        assert [r.lsn for r in decoded] == [1]
        assert torn == len(whole)

    def test_corrupt_body_stops_decoding(self):
        good = encode_frame(make_record(1))
        bad = bytearray(encode_frame(make_record(2)))
        bad[-1] ^= 0xFF  # flip a payload byte: CRC mismatch
        decoded, torn = decode_frames(bytes(good + bad) + encode_frame(make_record(3)))
        assert [r.lsn for r in decoded] == [1]
        assert torn == len(good)


class TestDurableLog:
    def test_appends_survive_reopen(self, tmp_path):
        db = durable_db(tmp_path / "db")
        db.execute("CREATE TABLE t (a integer, b text)")
        db.insert_rows("t", [(1, "x"), (2, "y")])
        db.execute("UPDATE t SET b = 'z' WHERE a = 2")
        db.close(checkpoint=False)

        db2 = durable_db(tmp_path / "db")
        assert db2.execute("SELECT a, b FROM t ORDER BY a").rows == [
            (1, "x"),
            (2, "z"),
        ]
        assert db2.last_recovery["records_replayed"] > 0

    def test_append_requires_activation(self, tmp_path):
        db = durable_db(tmp_path / "db")
        db.wal.close()
        with pytest.raises(TransactionError, match="not activated"):
            db.execute("CREATE TABLE t (a integer)")

    def test_uncommitted_tail_discarded_with_rid_continuity(self, tmp_path):
        db = durable_db(tmp_path / "db")
        db.execute("CREATE TABLE t (a integer)")
        db.insert_rows("t", [(1,)])
        # simulate a crash mid-transaction: log an INSERT with no COMMIT,
        # then abandon the process state entirely
        txn = db.txn_manager.begin()
        table = db.table("t")
        rid = table.insert((2,))
        txn.log_insert("t", rid, 8, undo=lambda: None, payload=(2,))
        db.wal.close()

        db2 = durable_db(tmp_path / "db")
        assert db2.execute("SELECT a FROM t").rows == [(1,)]
        assert db2.last_recovery["txns_discarded"] == 1
        # the dead rid is re-allocated as a filler slot so later rids match
        assert db2.table("t").allocated_rids == 2
        db2.insert_rows("t", [(3,)])
        assert db2.execute("SELECT a FROM t ORDER BY a").rows == [(1,), (3,)]

    def test_torn_final_frame_truncated(self, tmp_path):
        db = durable_db(tmp_path / "db")
        db.execute("CREATE TABLE t (a integer)")
        db.insert_rows("t", [(1,)])
        db.wal.close()
        # tear the final frame in half by hand
        wal_dir = tmp_path / "db" / "wal"
        segment = sorted(wal_dir.glob("*.wal"))[-1]
        data = segment.read_bytes()
        whole, _ = decode_frames(data)
        keep = len(data) - len(encode_frame(whole[-1])) // 2
        segment.write_bytes(data[:keep])

        scan = scan_wal(wal_dir)
        assert scan.torn_offset is not None
        # the truncation is durable: a second scan decodes cleanly
        rescan = scan_wal(wal_dir)
        assert rescan.torn_offset is None
        assert rescan.frames_decoded == len(whole) - 1

    def test_segment_rotation_and_bytes(self, tmp_path):
        db = durable_db(tmp_path / "db", wal_segment_bytes=1024)
        db.execute("CREATE TABLE t (a integer, b text)")
        db.insert_rows("t", [(i, "pad" * 30) for i in range(50)])
        assert db.wal.segment_count() > 1
        assert db.wal.bytes_on_disk() > 1024
        db.close(checkpoint=False)

        db2 = durable_db(tmp_path / "db", wal_segment_bytes=1024)
        assert db2.execute("SELECT count(*) FROM t").rows == [(50,)]

    def test_group_commit_batches_fsyncs(self, tmp_path):
        db = durable_db(tmp_path / "db", wal_group_commit=4)
        db.execute("CREATE TABLE t (a integer)")
        before = db.wal.fsyncs
        for i in range(8):  # 8 commits -> 2 barrier fsyncs
            db.insert_rows("t", [(i,)])
        assert db.wal.fsyncs - before == 2
        db.close(checkpoint=False)
        assert durable_db(tmp_path / "db").execute(
            "SELECT count(*) FROM t"
        ).rows == [(8,)]

    def test_ddl_replays_in_log_order(self, tmp_path):
        db = durable_db(tmp_path / "db")
        db.execute("CREATE TABLE t (a integer)")
        db.insert_rows("t", [(1,)])
        db.execute("ALTER TABLE t ADD COLUMN b text")
        db.execute("UPDATE t SET b = 'x'")
        db.execute("ALTER TABLE t DROP COLUMN a")
        db.execute("CREATE TABLE gone (z integer)")
        db.execute("DROP TABLE gone")
        db.close(checkpoint=False)

        db2 = durable_db(tmp_path / "db")
        assert db2.execute("SELECT * FROM t").rows == [("x",)]
        assert not db2.has_table("gone")

    def test_recover_refuses_populated_database(self, tmp_path):
        db = durable_db(tmp_path / "db")
        db.execute("CREATE TABLE t (a integer)")
        with pytest.raises(RecoveryError):
            db.recover()


class TestCheckpoint:
    def test_checkpoint_truncates_dead_segments(self, tmp_path):
        db = durable_db(tmp_path / "db", wal_segment_bytes=1024)
        db.execute("CREATE TABLE t (a integer, b text)")
        db.insert_rows("t", [(i, "pad" * 30) for i in range(50)])
        assert db.wal.segment_count() > 1
        info = db.checkpoint()
        assert info.segments_truncated >= 1
        assert db.wal.segment_count() == 1
        assert db.wal.bytes_on_disk() == 0

        db.close(checkpoint=False)
        db2 = durable_db(tmp_path / "db", wal_segment_bytes=1024)
        assert db2.last_recovery["had_checkpoint"]
        assert db2.last_recovery["records_replayed"] == 0
        assert db2.execute("SELECT count(*) FROM t").rows == [(50,)]

    def test_replay_starts_after_checkpoint_lsn(self, tmp_path):
        db = durable_db(tmp_path / "db")
        db.execute("CREATE TABLE t (a integer)")
        db.insert_rows("t", [(1,)])
        db.checkpoint()
        db.insert_rows("t", [(2,)])
        db.close(checkpoint=False)

        db2 = durable_db(tmp_path / "db")
        assert db2.last_recovery["had_checkpoint"]
        # only the post-checkpoint insert replays
        assert db2.last_recovery["txns_committed"] == 1
        assert db2.execute("SELECT a FROM t ORDER BY a").rows == [(1,), (2,)]

    def test_corrupt_checkpoint_falls_back_to_full_replay(self, tmp_path):
        # A corrupt checkpoint only arises from a crash racing the atomic
        # rename, i.e. before the WAL was truncated -- so the whole log is
        # still there and recovery can replay it from LSN 0.
        db = durable_db(tmp_path / "db")
        db.execute("CREATE TABLE t (a integer)")
        db.insert_rows("t", [(1,)])
        db.close(checkpoint=False)
        (tmp_path / "db" / "checkpoint.bin").write_bytes(b"garbage")

        db2 = durable_db(tmp_path / "db")
        assert not db2.last_recovery["had_checkpoint"]
        assert db2.execute("SELECT a FROM t").rows == [(1,)]

    def test_checkpoint_requires_quiescence(self, tmp_path):
        db = durable_db(tmp_path / "db")
        db.execute("CREATE TABLE t (a integer)")
        db.txn_manager.begin()
        with pytest.raises(TransactionError):
            db.checkpoint()

    def test_in_memory_database_cannot_checkpoint(self):
        db = Database("mem")
        with pytest.raises(TransactionError):
            db.checkpoint()


class TestFaultPoints:
    def test_wal_append_fault_prevents_commit(self, tmp_path):
        db = durable_db(tmp_path / "db")
        db.execute("CREATE TABLE t (a integer)")
        injector = FaultInjector()
        db.attach_faults(injector)
        # the single-row autocommit txn appends BEGIN, INSERT, COMMIT;
        # fail the COMMIT append so nothing becomes durable
        injector.plan("wal.append", "raise", at=3)
        with pytest.raises(InjectedFault):
            db.insert_rows("t", [(1,)])
        db.wal.close()

        db2 = durable_db(tmp_path / "db")
        assert db2.execute("SELECT count(*) FROM t").rows == [(0,)]

    def test_torn_write_point_tears_commit_frame(self, tmp_path):
        db = durable_db(tmp_path / "db")
        db.execute("CREATE TABLE t (a integer)")
        db.insert_rows("t", [(1,)])
        injector = FaultInjector()
        db.attach_faults(injector)
        injector.plan("wal.torn_write", "raise", at=1)
        with pytest.raises(InjectedFault):
            db.insert_rows("t", [(2,)])
        db.wal._fh.close()  # abandon without syncing, like a crash

        db2 = durable_db(tmp_path / "db")
        assert db2.last_recovery["torn_offset"] is not None
        assert db2.execute("SELECT a FROM t").rows == [(1,)]

    def test_fsync_fault_fires_at_barrier(self, tmp_path):
        db = durable_db(tmp_path / "db")
        db.execute("CREATE TABLE t (a integer)")
        injector = FaultInjector()
        db.attach_faults(injector)
        injector.plan("wal.fsync", "raise", at=1)
        with pytest.raises(InjectedFault):
            db.insert_rows("t", [(1,)])
        assert injector.fired("wal.fsync") == 1

    def test_checkpoint_truncate_fault_leaves_stale_segments(self, tmp_path):
        db = durable_db(tmp_path / "db")
        db.execute("CREATE TABLE t (a integer)")
        db.insert_rows("t", [(1,)])
        injector = FaultInjector()
        db.attach_faults(injector)
        injector.plan("checkpoint.truncate", "raise", at=1)
        with pytest.raises(InjectedFault):
            db.checkpoint()
        # the checkpoint itself landed; the stale segments are skipped by
        # LSN on recovery
        db.wal.close()
        db2 = durable_db(tmp_path / "db")
        assert db2.last_recovery["had_checkpoint"]
        assert db2.last_recovery["records_replayed"] == 0
        assert db2.execute("SELECT a FROM t").rows == [(1,)]

    def test_fault_points_inert_in_memory(self):
        db = Database("mem")
        db.execute("CREATE TABLE t (a integer)")
        injector = FaultInjector()
        db.attach_faults(injector)
        injector.plan("wal.append", "raise", at=1)
        db.insert_rows("t", [(1,)])  # no fault: wal.append is durable-only
        assert injector.fired("wal.append") == 0


class TestRecordsForIndex:
    def test_in_memory_keeps_full_history(self):
        db = Database("mem")
        db.execute("CREATE TABLE t (a integer)")
        db.insert_rows("t", [(1,)])
        wal = db.wal
        committed = [t for t in range(1, wal.last_lsn + 1) if wal.records_for(t)]
        assert committed  # post-commit introspection still works
        types = [r.record_type for r in wal.records_for(committed[0])]
        assert types[0] is WalRecordType.BEGIN
        assert types[-1] is WalRecordType.COMMIT

    def test_durable_mode_evicts_finished_txns(self, tmp_path):
        db = durable_db(tmp_path / "db")
        db.execute("CREATE TABLE t (a integer)")
        db.insert_rows("t", [(1,)])
        txn = db.txn_manager.begin()
        table = db.table("t")
        rid = table.insert((9,))
        txn.log_insert("t", rid, 8, undo=lambda r=rid: None, payload=(9,))
        # active txn is indexed; the committed autocommit one is evicted
        active = db.wal.records_for(txn.txn_id)
        assert [r.record_type for r in active] == [
            WalRecordType.BEGIN,
            WalRecordType.INSERT,
        ]
        assert all(
            not db.wal.records_for(t) for t in range(1, txn.txn_id)
        )
        db.txn_manager.finish(txn, commit=True)
        assert db.wal.records_for(txn.txn_id) == []

    def test_wal_status_surface(self, tmp_path):
        db = durable_db(tmp_path / "db")
        db.execute("CREATE TABLE t (a integer)")
        db.insert_rows("t", [(1,)])
        db.checkpoint()
        status = db.wal_status()
        assert status["durable"] is True
        assert status["records"] == db.wal.total_records
        assert status["fsyncs"] >= 1
        assert status["checkpoints"] == 1
        assert status["last_checkpoint_lsn"] == db.wal.last_lsn
        assert status["last_recovery"]["had_checkpoint"] is False

        mem_status = Database("mem").wal_status()
        assert mem_status["durable"] is False
        assert mem_status["last_recovery"] is None
