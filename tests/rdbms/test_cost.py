"""Tests for the cost counters, I/O model, and disk budget."""

import pytest

from repro.rdbms.cost import CostCounters, DiskBudget, IoCostModel
from repro.rdbms.errors import DiskFullError


class TestCostCounters:
    def test_reset(self):
        counters = CostCounters(pages_read=5, udf_calls=3)
        counters.reset()
        assert counters.pages_read == 0 and counters.udf_calls == 0

    def test_snapshot_and_diff(self):
        counters = CostCounters()
        before = counters.snapshot()
        counters.pages_read += 7
        counters.wal_records += 2
        delta = counters.diff(before)
        assert delta["pages_read"] == 7
        assert delta["wal_records"] == 2
        assert delta["tuples_scanned"] == 0

    def test_snapshot_is_immutable_copy(self):
        counters = CostCounters()
        snapshot = counters.snapshot()
        counters.pages_read += 1
        assert snapshot["pages_read"] == 0

    def test_addition(self):
        a = CostCounters(pages_read=1, spill_bytes=10)
        b = CostCounters(pages_read=2, udf_calls=5)
        merged = a + b
        assert merged.pages_read == 3
        assert merged.spill_bytes == 10
        assert merged.udf_calls == 5


class TestIoCostModel:
    def test_modelled_seconds(self):
        model = IoCostModel(
            page_read_seconds=1e-3, page_write_seconds=2e-3, wal_sync_seconds=5e-3
        )
        counters = CostCounters(pages_read=10, pages_written=5, wal_records=2)
        assert model.modelled_io_seconds(counters) == pytest.approx(
            10e-3 + 10e-3 + 10e-3
        )

    def test_zero_counters_zero_io(self):
        assert IoCostModel().modelled_io_seconds(CostCounters()) == 0.0


class TestDiskBudget:
    def test_unlimited_never_raises(self):
        budget = DiskBudget(None)
        budget.charge(10**12)
        assert budget.used_bytes == 10**12

    def test_charge_over_budget_raises(self):
        budget = DiskBudget(100)
        budget.charge(60)
        with pytest.raises(DiskFullError) as info:
            budget.charge(60)
        assert info.value.used_bytes == 120
        assert info.value.budget_bytes == 100

    def test_release_recovers_headroom(self):
        budget = DiskBudget(100)
        budget.charge(90)
        budget.release(50)
        budget.charge(50)  # fits again
        assert budget.used_bytes == 90

    def test_release_floors_at_zero(self):
        budget = DiskBudget(100)
        budget.release(999)
        assert budget.used_bytes == 0

    def test_high_water_mark(self):
        budget = DiskBudget(None)
        budget.charge(70)
        budget.release(50)
        budget.charge(10)
        assert budget.high_water_bytes == 70
        assert budget.used_bytes == 30

    def test_budget_can_be_tightened_after_use(self):
        # the harness sets budgets post-load (free-disk headroom model)
        budget = DiskBudget(None)
        budget.charge(500)
        budget.budget_bytes = budget.used_bytes + 100
        budget.charge(100)
        with pytest.raises(DiskFullError):
            budget.charge(1)
