"""Morsel-driven parallel executor: morsel math, result equality, EXPLAIN.

The contract under test is *serial equivalence*: for every eligible query,
the parallel plan must return the same rows in the same order with the
same extraction counters as the serial plan.  See DESIGN.md section 10.
"""

import pytest

from repro.rdbms.database import Database, DatabaseConfig
from repro.rdbms.executor import MORSEL_ROWS, ExecutorPool, Morsel, partition_morsels
from repro.rdbms.plan_nodes import (
    HashAggregate,
    ParallelHashAggregate,
    ParallelScan,
    ParallelSort,
)
from repro.rdbms.sql.parser import parse
from repro.rdbms.types import SqlType


# ---------------------------------------------------------------------------
# morsel boundary math
# ---------------------------------------------------------------------------


class TestPartitionMorsels:
    def test_empty_table(self):
        assert partition_morsels(0) == []

    def test_negative_is_empty(self):
        assert partition_morsels(-5) == []

    def test_smaller_than_one_morsel(self):
        morsels = partition_morsels(10)
        assert morsels == [Morsel(0, 0, 10)]

    def test_exact_multiple(self):
        morsels = partition_morsels(2 * MORSEL_ROWS)
        assert [(m.start_rid, m.end_rid) for m in morsels] == [
            (0, MORSEL_ROWS),
            (MORSEL_ROWS, 2 * MORSEL_ROWS),
        ]

    def test_remainder_morsel(self):
        morsels = partition_morsels(MORSEL_ROWS + 1)
        assert len(morsels) == 2
        assert len(morsels[-1]) == 1

    def test_covers_whole_rid_space(self):
        n = 3 * MORSEL_ROWS + 17
        morsels = partition_morsels(n)
        assert morsels[0].start_rid == 0
        assert morsels[-1].end_rid == n
        for left, right in zip(morsels, morsels[1:]):
            assert left.end_rid == right.start_rid

    def test_custom_morsel_rows(self):
        assert len(partition_morsels(100, morsel_rows=10)) == 10

    def test_invalid_morsel_rows(self):
        with pytest.raises(ValueError):
            partition_morsels(100, morsel_rows=0)


class TestExecutorPool:
    def test_serial_pool_never_starts_threads(self):
        pool = ExecutorPool(1)
        results = pool.map_morsels(len, partition_morsels(10_000))
        assert sum(results) == 10_000
        assert pool.status()["started"] is False

    def test_results_in_morsel_order(self):
        pool = ExecutorPool(4)
        morsels = partition_morsels(20_000, morsel_rows=100)
        try:
            results = pool.map_morsels(lambda m: m.index, morsels)
        finally:
            pool.shutdown()
        assert results == list(range(len(morsels)))

    def test_worker_error_propagates(self):
        pool = ExecutorPool(4)

        def boom(morsel):
            if morsel.index == 3:
                raise RuntimeError("morsel 3 failed")
            return morsel.index

        try:
            with pytest.raises(RuntimeError, match="morsel 3"):
                pool.map_morsels(boom, partition_morsels(1000, morsel_rows=100))
        finally:
            pool.shutdown()

    def test_shutdown_idempotent(self):
        pool = ExecutorPool(2)
        pool.map_morsels(len, partition_morsels(10, morsel_rows=1))
        pool.shutdown()
        pool.shutdown()


# ---------------------------------------------------------------------------
# parallel-vs-serial equivalence
# ---------------------------------------------------------------------------

N_ROWS = 10_000  # > 2 morsels, so the pool actually fans out


def _populate(database: Database) -> None:
    database.execute("CREATE TABLE t (a integer, b text, c integer)")
    rows = [
        (i, f"s{i % 7}", None if i % 11 == 0 else i % 13) for i in range(N_ROWS)
    ]
    database.insert_rows("t", rows)
    database.analyze()


@pytest.fixture(scope="module")
def pair():
    serial = Database("serial", DatabaseConfig(parallel_workers=1))
    parallel = Database("parallel", DatabaseConfig(parallel_workers=4))
    _populate(serial)
    _populate(parallel)
    yield serial, parallel
    serial.close()
    parallel.close()


EQUIVALENCE_QUERIES = [
    "SELECT a, b FROM t WHERE a % 3 = 0",
    "SELECT a + c, b FROM t WHERE c IS NOT NULL",
    "SELECT a, c FROM t ORDER BY c, a DESC",
    "SELECT b, c FROM t WHERE a % 2 = 0 ORDER BY b DESC, c",
    "SELECT count(*) FROM t",
    "SELECT b, count(*), sum(a), avg(a), min(c), max(c) FROM t GROUP BY b",
    "SELECT c, count(*) FROM t WHERE a % 5 = 1 GROUP BY c",
    "SELECT DISTINCT b FROM t",
    "SELECT a FROM t ORDER BY a DESC LIMIT 25",
    "SELECT b, avg(c) FROM t GROUP BY b ORDER BY b",
]


class TestSerialEquivalence:
    @pytest.mark.parametrize("sql", EQUIVALENCE_QUERIES)
    def test_rows_identical(self, pair, sql):
        serial, parallel = pair
        assert parallel.execute(sql).rows == serial.execute(sql).rows

    def test_plan_is_actually_parallel(self, pair):
        _serial, parallel = pair
        plan = parallel._plan(parse("SELECT a FROM t WHERE a % 3 = 0"))
        assert any(isinstance(node, ParallelScan) for node in plan.walk())

    def test_empty_table_parallel(self):
        database = Database("empty", DatabaseConfig(parallel_workers=4))
        database.execute("CREATE TABLE e (x integer)")
        database.analyze()
        assert database.execute("SELECT x FROM e WHERE x > 0").rows == []
        # a global aggregate over zero morsels still yields its one row
        assert database.execute("SELECT count(*) FROM e").rows == [(0,)]
        database.close()

    def test_dead_slots_skipped(self, pair):
        """Deleted rows leave dead slots inside morsels (like recovery
        filler); both engines must skip them identically."""
        serial, parallel = pair
        for database in (serial, parallel):
            database.execute("DELETE FROM t WHERE a % 97 = 3")
        sql = "SELECT a, b FROM t WHERE a % 2 = 1 ORDER BY a"
        assert parallel.execute(sql).rows == serial.execute(sql).rows

    def test_udf_call_counts_identical(self, pair):
        serial, parallel = pair
        for database in (serial, parallel):
            database.create_function(
                "double_it", lambda v: None if v is None else v * 2, SqlType.INTEGER
            )
        sql = "SELECT double_it(a) FROM t WHERE double_it(c) = 10"
        baselines = {}
        for name, database in (("serial", serial), ("parallel", parallel)):
            before = database.counters.udf_calls
            rows = database.execute(sql).rows
            baselines[name] = (rows, database.counters.udf_calls - before)
        assert baselines["serial"] == baselines["parallel"]


# ---------------------------------------------------------------------------
# eligibility rules
# ---------------------------------------------------------------------------


class TestEligibility:
    @pytest.fixture()
    def db(self):
        database = Database("elig", DatabaseConfig(parallel_workers=4))
        database.execute("CREATE TABLE t (a integer, b text)")
        database.insert_rows("t", [(i, f"x{i % 3}") for i in range(100)])
        database.analyze()
        yield database
        database.close()

    def _parallel_nodes(self, database, sql):
        plan = database._plan(parse(sql))
        return [n for n in plan.walk() if isinstance(n, ParallelScan)]

    def test_limit_without_order_by_stays_serial(self, db):
        assert not self._parallel_nodes(db, "SELECT a FROM t WHERE a > 1 LIMIT 5")

    def test_limit_with_order_by_parallelizes(self, db):
        nodes = self._parallel_nodes(db, "SELECT a FROM t ORDER BY a LIMIT 5")
        assert any(isinstance(n, ParallelSort) for n in nodes)

    def test_volatile_predicate_stays_serial(self, db):
        db.create_function("vol", lambda v: v, SqlType.INTEGER, volatile=True)
        assert not self._parallel_nodes(db, "SELECT a FROM t WHERE vol(a) > 1")

    def test_volatile_projection_not_pushed_to_workers(self, db):
        db.create_function("vol2", lambda v: v, SqlType.INTEGER, volatile=True)
        nodes = self._parallel_nodes(db, "SELECT vol2(a) FROM t WHERE a > 1")
        # the safe predicate parallelizes, but the volatile projection must
        # stay in the main thread (not folded into the scan workers)
        assert nodes and all(node.projection is None for node in nodes)

    def test_stable_udf_parallelizes(self, db):
        db.create_function("stab", lambda v: v, SqlType.INTEGER)
        assert self._parallel_nodes(db, "SELECT stab(a) FROM t WHERE a > 1")

    def test_distinct_aggregate_stays_serial(self, db):
        plan = db._plan(parse("SELECT count(DISTINCT b) FROM t"))
        assert any(isinstance(n, HashAggregate) for n in plan.walk())
        assert not any(isinstance(n, ParallelHashAggregate) for n in plan.walk())

    def test_join_stays_serial(self, db):
        db.execute("CREATE TABLE u (a integer)")
        db.insert_rows("u", [(i,) for i in range(10)])
        db.analyze()
        assert not self._parallel_nodes(
            db, "SELECT t.a FROM t, u WHERE t.a = u.a"
        )

    def test_serial_config_never_parallelizes(self):
        database = Database("one", DatabaseConfig(parallel_workers=1))
        database.execute("CREATE TABLE t (a integer)")
        database.insert_rows("t", [(i,) for i in range(100)])
        database.analyze()
        plan = database._plan(parse("SELECT a FROM t WHERE a > 1"))
        assert not any(isinstance(n, ParallelScan) for n in plan.walk())
        database.close()


# ---------------------------------------------------------------------------
# EXPLAIN / EXPLAIN ANALYZE surface
# ---------------------------------------------------------------------------


class TestExplainSurface:
    def test_explain_analyze_reports_workers(self):
        database = Database("xa", DatabaseConfig(parallel_workers=4))
        database.execute("CREATE TABLE t (a integer, b text)")
        database.insert_rows("t", [(i, f"s{i % 5}") for i in range(9000)])
        database.analyze()
        result = database.execute_statement(
            parse("SELECT a, b FROM t WHERE a % 2 = 0"), analyze=True
        )
        assert "workers=4" in result.plan_text
        assert "Parallel: workers=4 morsels=3" in result.plan_text
        assert "Worker 0:" in result.plan_text
        assert result.exec_stats["workers"] == 4
        assert result.exec_stats["morsels"] == 3
        per_worker = result.exec_stats["per_worker"]
        assert sum(w["rows"] for w in per_worker) == len(result.rows)
        assert sum(w["tuples_scanned"] for w in per_worker) == 9000
        database.close()

    def test_plain_explain_shows_workers_and_filter(self):
        database = Database("xp", DatabaseConfig(parallel_workers=2))
        database.execute("CREATE TABLE t (a integer)")
        database.insert_rows("t", [(i,) for i in range(100)])
        database.analyze()
        text = database.explain("SELECT a FROM t WHERE a > 3")
        assert "Parallel Seq Scan on t  (workers=2)" in text
        assert "Filter:" in text
        database.close()

    def test_serial_plan_has_no_parallel_block(self):
        database = Database("xs", DatabaseConfig(parallel_workers=1))
        database.execute("CREATE TABLE t (a integer)")
        database.insert_rows("t", [(i,) for i in range(100)])
        database.analyze()
        result = database.execute_statement(
            parse("SELECT a FROM t WHERE a > 3"), analyze=True
        )
        assert "Parallel:" not in result.plan_text
        assert "workers" not in result.exec_stats
        database.close()
