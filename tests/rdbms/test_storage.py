"""Unit tests for heap storage, pages, and the buffer pool."""

import pytest

from repro.rdbms.cost import CostCounters, DiskBudget
from repro.rdbms.errors import DiskFullError, ExecutionError
from repro.rdbms.storage import BufferPool, Column, HeapTable, Schema
from repro.rdbms.types import NullStorageModel, SqlType


def make_table(
    columns=None,
    buffer_pages: int = 128,
    disk_budget: int | None = None,
    page_bytes: int = 8192,
) -> HeapTable:
    columns = columns or [Column("a", SqlType.INTEGER), Column("b", SqlType.TEXT)]
    counters = CostCounters()
    return HeapTable(
        "t",
        Schema(columns),
        counters,
        BufferPool(buffer_pages, counters),
        DiskBudget(disk_budget),
        page_bytes=page_bytes,
    )


class TestSchema:
    def test_position_and_lookup(self):
        schema = Schema([Column("x", SqlType.INTEGER), Column("y", SqlType.TEXT)])
        assert schema.position_of("y") == 1
        assert "x" in schema
        assert schema.names() == ["x", "y"]

    def test_duplicate_name_rejected(self):
        with pytest.raises(ExecutionError):
            Schema([Column("x", SqlType.INTEGER), Column("x", SqlType.TEXT)])

    def test_missing_column_raises(self):
        schema = Schema([Column("x", SqlType.INTEGER)])
        with pytest.raises(ExecutionError):
            schema.position_of("nope")

    def test_with_and_without_column(self):
        schema = Schema([Column("x", SqlType.INTEGER)])
        widened = schema.with_column(Column("y", SqlType.TEXT))
        assert widened.names() == ["x", "y"]
        narrowed = widened.without_column("x")
        assert narrowed.names() == ["y"]
        with pytest.raises(ExecutionError):
            widened.without_column("zzz")


class TestHeapBasics:
    def test_insert_and_scan(self):
        table = make_table()
        rids = [table.insert((i, f"v{i}")) for i in range(10)]
        assert rids == list(range(10))
        assert [(rid, row) for rid, row in table.scan()] == [
            (i, (i, f"v{i}")) for i in range(10)
        ]
        assert len(table) == 10

    def test_arity_mismatch_rejected(self):
        table = make_table()
        with pytest.raises(ExecutionError):
            table.insert((1,))

    def test_update_preserves_rid(self):
        table = make_table()
        rid = table.insert((1, "old"))
        old = table.update(rid, (1, "new"))
        assert old == (1, "old")
        assert table.fetch(rid) == (1, "new")

    def test_delete_and_undo_delete(self):
        table = make_table()
        rid = table.insert((1, "x"))
        old = table.delete(rid)
        assert old == (1, "x")
        assert len(table) == 0
        with pytest.raises(ExecutionError):
            table.delete(rid)
        table.undo_delete(rid, old)
        assert table.fetch(rid) == (1, "x")
        assert len(table) == 1

    def test_scan_skips_dead_rows(self):
        table = make_table()
        for i in range(5):
            table.insert((i, "v"))
        table.delete(2)
        assert [rid for rid, _row in table.scan()] == [0, 1, 3, 4]

    def test_fetch_out_of_range(self):
        table = make_table()
        with pytest.raises(ExecutionError):
            table.fetch(0)

    def test_truncate_resets_everything(self):
        table = make_table()
        for i in range(100):
            table.insert((i, "x" * 50))
        table.truncate()
        assert len(table) == 0
        assert table.total_bytes == 0
        assert table.n_pages == 0
        assert list(table.scan()) == []


class TestSizeAccounting:
    def test_total_bytes_tracks_mutations(self):
        table = make_table()
        table.insert((1, "abcdef"))
        initial = table.total_bytes
        assert initial > 0
        table.update(0, (1, "abcdefabcdef"))
        assert table.total_bytes == initial + 6
        table.delete(0)
        assert table.total_bytes == 0

    def test_null_values_cost_only_bitmap(self):
        table = make_table()
        table.insert((None, None))
        table.insert((1, "abc"))
        null_row = table.tuple_bytes((None, None))
        full_row = table.tuple_bytes((1, "abc"))
        assert full_row == null_row + 8 + (4 + 3)

    def test_per_attribute_model_charges_more(self):
        columns = [Column(f"c{i}", SqlType.INTEGER) for i in range(150)]
        counters = CostCounters()
        bitmap = HeapTable(
            "a", Schema(columns), counters, BufferPool(8, counters), DiskBudget(),
            null_model=NullStorageModel.BITMAP,
        )
        innodb = HeapTable(
            "b", Schema(columns), counters, BufferPool(8, counters), DiskBudget(),
            null_model=NullStorageModel.PER_ATTRIBUTE,
        )
        row = tuple([None] * 150)
        # 300 bytes of per-attribute header vs a 19-byte bitmap
        assert innodb.tuple_bytes(row) - bitmap.tuple_bytes(row) == 300 - 19

    def test_pages_allocated_by_size(self):
        table = make_table(page_bytes=1024)
        for i in range(100):
            table.insert((i, "x" * 100))
        assert table.n_pages > 5


class TestSchemaEvolution:
    def test_add_column_widens_rows(self):
        table = make_table()
        table.insert((1, "x"))
        table.add_column(Column("c", SqlType.REAL))
        assert table.fetch(0) == (1, "x", None)
        table.update(0, (1, "x", 2.5))
        assert table.fetch(0)[2] == 2.5

    def test_drop_column_narrows_rows_and_frees_bytes(self):
        table = make_table()
        table.insert((1, "hello"))
        before = table.total_bytes
        table.drop_column("b")
        assert table.fetch(0) == (1,)
        assert table.total_bytes < before


class TestBufferPool:
    def test_miss_then_hit(self):
        counters = CostCounters()
        pool = BufferPool(4, counters)
        assert pool.access("t", 0) is False
        assert counters.pages_read == 1
        assert pool.access("t", 0) is True
        assert counters.page_cache_hits == 1

    def test_lru_eviction(self):
        counters = CostCounters()
        pool = BufferPool(2, counters)
        pool.access("t", 0)
        pool.access("t", 1)
        pool.access("t", 2)  # evicts page 0
        assert pool.access("t", 0) is False  # miss again

    def test_scan_larger_than_pool_registers_reads(self):
        table = make_table(buffer_pages=2, page_bytes=512)
        for i in range(200):
            table.insert((i, "x" * 40))
        assert table.n_pages > 4
        table.counters.reset()
        list(table.scan())
        first_scan_reads = table.counters.pages_read
        assert first_scan_reads >= table.n_pages - 2
        list(table.scan())
        # the pool is too small: the second scan misses again
        assert table.counters.pages_read >= 2 * first_scan_reads - 2

    def test_small_table_stays_resident(self):
        table = make_table(buffer_pages=64)
        for i in range(20):
            table.insert((i, "v"))
        table.counters.reset()
        list(table.scan())
        list(table.scan())
        assert table.counters.pages_read <= 1


class TestDiskBudget:
    def test_budget_exhaustion_raises(self):
        table = make_table(disk_budget=3 * 8192)
        with pytest.raises(DiskFullError):
            for i in range(10000):
                table.insert((i, "x" * 100))

    def test_release_on_truncate(self):
        table = make_table(disk_budget=1 << 20)
        for i in range(100):
            table.insert((i, "x" * 100))
        used = table.disk.used_bytes
        assert used > 0
        table.truncate()
        assert table.disk.used_bytes == 0
