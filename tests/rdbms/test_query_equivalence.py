"""Property test: the engine agrees with a naive Python evaluator.

Random WHERE predicates over a fixed table are executed two ways -- through
the full parser/planner/executor stack, and by filtering rows in plain
Python with SQL three-valued semantics -- and must select identical row
sets.  This catches planner rewrites (pushdown, join ordering, aggregate
strategy) that would change results.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdbms.database import Database

ROWS = [
    (i, ["red", "green", "blue"][i % 3] if i % 7 else None, (i * 13) % 50, i % 2 == 0)
    for i in range(80)
]
COLUMNS = ["id", "color", "score", "flag"]


@pytest.fixture(scope="module")
def db():
    database = Database("equiv")
    database.execute(
        "CREATE TABLE t (id integer, color text, score integer, flag boolean)"
    )
    database.insert_rows("t", ROWS)
    database.analyze()
    return database


# -- predicate generator + naive evaluator ---------------------------------

_comparisons = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


@st.composite
def predicates(draw, depth=2):
    """(sql_text, python_fn) pairs with SQL three-valued semantics."""
    if depth == 0 or draw(st.booleans()):
        kind = draw(st.sampled_from(["num", "color", "flag", "null", "between", "in"]))
        if kind == "num":
            op = draw(_comparisons)
            value = draw(st.integers(min_value=-5, max_value=55))
            column = draw(st.sampled_from(["id", "score"]))
            index = COLUMNS.index(column)
            ops = {
                "=": lambda a, b: a == b, "<>": lambda a, b: a != b,
                "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
                ">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
            }
            return (
                f"{column} {op} {value}",
                lambda row, i=index, f=ops[op], v=value: (
                    None if row[i] is None else f(row[i], v)
                ),
            )
        if kind == "color":
            value = draw(st.sampled_from(["red", "green", "blue", "mauve"]))
            negated = draw(st.booleans())
            if negated:
                return (
                    f"color <> '{value}'",
                    lambda row, v=value: None if row[1] is None else row[1] != v,
                )
            return (
                f"color = '{value}'",
                lambda row, v=value: None if row[1] is None else row[1] == v,
            )
        if kind == "flag":
            value = draw(st.booleans())
            literal = "true" if value else "false"
            return (
                f"flag = {literal}",
                lambda row, v=value: row[3] == v,
            )
        if kind == "null":
            negated = draw(st.booleans())
            if negated:
                return ("color IS NOT NULL", lambda row: row[1] is not None)
            return ("color IS NULL", lambda row: row[1] is None)
        if kind == "between":
            low = draw(st.integers(min_value=0, max_value=40))
            high = low + draw(st.integers(min_value=0, max_value=20))
            return (
                f"score BETWEEN {low} AND {high}",
                lambda row, lo=low, hi=high: (
                    None if row[2] is None else lo <= row[2] <= hi
                ),
            )
        items = draw(
            st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=4)
        )
        rendered = ", ".join(map(str, items))
        return (
            f"id IN ({rendered})",
            lambda row, vals=tuple(items): (
                None if row[0] is None else row[0] in vals
            ),
        )

    connective = draw(st.sampled_from(["AND", "OR", "NOT"]))
    left_sql, left_fn = draw(predicates(depth=depth - 1))
    if connective == "NOT":
        return (
            f"NOT ({left_sql})",
            lambda row, f=left_fn: None if f(row) is None else not f(row),
        )
    right_sql, right_fn = draw(predicates(depth=depth - 1))
    if connective == "AND":
        def _and(row, l=left_fn, r=right_fn):
            a, b = l(row), r(row)
            if a is False or b is False:
                return False
            if a is None or b is None:
                return None
            return True

        return (f"({left_sql}) AND ({right_sql})", _and)

    def _or(row, l=left_fn, r=right_fn):
        a, b = l(row), r(row)
        if a is True or b is True:
            return True
        if a is None or b is None:
            return None
        return False

    return (f"({left_sql}) OR ({right_sql})", _or)


@pytest.fixture(scope="module")
def sinew():
    """The same rows as schemaless documents in Sinew (NULL == absent)."""
    from repro.core import SinewDB

    instance = SinewDB("equiv_sinew")
    instance.create_collection("t")
    documents = []
    for row_id, color, score, flag in ROWS:
        document = {"id": row_id, "score": score, "flag": flag}
        if color is not None:
            document["color"] = color
        documents.append(document)
    instance.load("t", documents)
    instance.settle("t")
    return instance


class TestSinewEquivalence:
    """The full Sinew stack (rewriter + extraction UDFs + hybrid schema)
    must agree with the naive evaluator too."""

    @given(predicates())
    @settings(max_examples=60, deadline=None)
    def test_sinew_where_matches_naive_filter(self, sinew, predicate):
        sql_text, python_fn = predicate
        engine_ids = sorted(
            row[0]
            for row in sinew.query(f"SELECT id FROM t WHERE {sql_text}").rows
        )
        naive_ids = sorted(row[0] for row in ROWS if python_fn(row) is True)
        assert engine_ids == naive_ids, sql_text


class TestEquivalence:
    @given(predicates())
    @settings(max_examples=200, deadline=None)
    def test_where_matches_naive_filter(self, db, predicate):
        sql_text, python_fn = predicate
        engine_ids = sorted(
            row[0] for row in db.execute(f"SELECT id FROM t WHERE {sql_text}").rows
        )
        naive_ids = sorted(row[0] for row in ROWS if python_fn(row) is True)
        assert engine_ids == naive_ids, sql_text

    @given(predicates())
    @settings(max_examples=60, deadline=None)
    def test_count_star_matches(self, db, predicate):
        sql_text, python_fn = predicate
        engine_count = db.execute(f"SELECT count(*) FROM t WHERE {sql_text}").scalar()
        naive_count = sum(1 for row in ROWS if python_fn(row) is True)
        assert engine_count == naive_count, sql_text

    @given(predicates())
    @settings(max_examples=60, deadline=None)
    def test_group_by_totals_match(self, db, predicate):
        sql_text, python_fn = predicate
        engine = dict(
            db.execute(
                f"SELECT flag, count(*) FROM t WHERE {sql_text} GROUP BY flag"
            ).rows
        )
        naive: dict = {}
        for row in ROWS:
            if python_fn(row) is True:
                naive[row[3]] = naive.get(row[3], 0) + 1
        assert engine == naive, sql_text
