"""Direct unit tests for physical operators (bypassing the planner)."""

import pytest

from repro.rdbms.cost import CostCounters, DiskBudget
from repro.rdbms.expressions import BinaryOp, ColumnRef, Literal
from repro.rdbms.functions import FunctionRegistry
from repro.rdbms.plan_nodes import (
    AggSpec,
    ExecutionContext,
    Filter,
    GroupAggregate,
    HashAggregate,
    HashJoin,
    Limit,
    MergeJoin,
    NestedLoopJoin,
    Project,
    SeqScan,
    Sort,
    Unique,
)
from repro.rdbms.storage import BufferPool, Column, HeapTable, Schema
from repro.rdbms.types import SqlType


def make_table(name, columns, rows):
    counters = CostCounters()
    table = HeapTable(
        name,
        Schema([Column(n, t) for n, t in columns]),
        counters,
        BufferPool(64, counters),
        DiskBudget(),
    )
    for row in rows:
        table.insert(row)
    return table


def context(work_mem=1 << 20):
    counters = CostCounters()
    return ExecutionContext(counters, FunctionRegistry(counters), DiskBudget(), work_mem)


@pytest.fixture()
def people():
    return make_table(
        "people",
        [("id", SqlType.INTEGER), ("grp", SqlType.TEXT), ("score", SqlType.INTEGER)],
        [
            (1, "a", 10),
            (2, "b", 20),
            (3, "a", 30),
            (4, None, None),
            (5, "b", 50),
        ],
    )


class TestScanFilterProject:
    def test_seq_scan_all_rows(self, people):
        scan = SeqScan(people, "p")
        assert len(list(scan.rows(context()))) == 5
        assert scan.output_columns[0] == ("p", "id")

    def test_filter_three_valued(self, people):
        scan = SeqScan(people, "p")
        predicate = BinaryOp(">", ColumnRef("p", "score"), Literal(15))
        node = Filter(scan, predicate, 0.5)
        rows = list(node.rows(context()))
        assert [row[0] for row in rows] == [2, 3, 5]  # NULL score dropped

    def test_project_expressions(self, people):
        scan = SeqScan(people, "p")
        node = Project(
            scan,
            [BinaryOp("*", ColumnRef("p", "id"), Literal(2))],
            ["doubled"],
        )
        assert [row[0] for row in node.rows(context())] == [2, 4, 6, 8, 10]

    def test_limit(self, people):
        node = Limit(SeqScan(people, "p"), 2)
        assert len(list(node.rows(context()))) == 2


class TestSortUnique:
    def test_sort_nulls_last(self, people):
        node = Sort(SeqScan(people, "p"), [(ColumnRef("p", "grp"), True)])
        groups = [row[1] for row in node.rows(context())]
        assert groups == ["a", "a", "b", "b", None]

    def test_sort_descending(self, people):
        # DESC places NULLs first (PostgreSQL default), then values
        node = Sort(SeqScan(people, "p"), [(ColumnRef("p", "score"), False)])
        scores = [row[2] for row in node.rows(context())]
        assert scores[0] is None
        assert scores[1:] == [50, 30, 20, 10]

    def test_sort_mixed_type_key_does_not_crash(self):
        table = make_table("m", [("v", SqlType.TEXT)], [(1,), ("x",), (2.5,), (None,)])
        node = Sort(SeqScan(table, "m"), [(ColumnRef("m", "v"), True)])
        values = [row[0] for row in node.rows(context())]
        assert values[:2] == [1, 2.5]  # numbers first, then text, NULL last
        assert values[-1] is None

    def test_unique_on_sorted(self, people):
        ordered = Sort(
            Project(SeqScan(people, "p"), [ColumnRef("p", "grp")], ["grp"]),
            [(ColumnRef(None, "grp"), True)],
        )
        node = Unique(ordered)
        assert [row[0] for row in node.rows(context())] == ["a", "b", None]

    def test_sort_spills_when_over_work_mem(self, people):
        ctx = context(work_mem=16)
        node = Sort(SeqScan(people, "p"), [(ColumnRef("p", "id"), True)])
        list(node.rows(ctx))
        assert ctx.counters.spill_bytes > 0
        assert ctx.disk.used_bytes == 0  # released after the sort


class TestAggregates:
    def agg_specs(self, registry):
        return [
            AggSpec(registry.aggregate("count"), None, False, "__agg0"),
            AggSpec(registry.aggregate("sum"), ColumnRef("p", "score"), False, "__agg1"),
        ]

    def test_hash_aggregate_groups(self, people):
        ctx = context()
        node = HashAggregate(
            SeqScan(people, "p"),
            [ColumnRef("p", "grp")],
            self.agg_specs(ctx.functions),
            est_groups=3,
        )
        out = {row[0]: (row[1], row[2]) for row in node.rows(ctx)}
        assert out == {"a": (2, 40), "b": (2, 70), None: (1, None)}

    def test_group_aggregate_matches_hash(self, people):
        ctx = context()
        sorted_input = Sort(SeqScan(people, "p"), [(ColumnRef("p", "grp"), True)])
        node = GroupAggregate(
            sorted_input,
            [ColumnRef("p", "grp")],
            self.agg_specs(ctx.functions),
            est_groups=3,
        )
        out = {row[0]: (row[1], row[2]) for row in node.rows(ctx)}
        assert out == {"a": (2, 40), "b": (2, 70), None: (1, None)}

    def test_distinct_aggregate(self, people):
        ctx = context()
        spec = AggSpec(
            ctx.functions.aggregate("count"), ColumnRef("p", "grp"), True, "__agg0"
        )
        node = HashAggregate(SeqScan(people, "p"), [], [spec], est_groups=1)
        assert list(node.rows(ctx)) == [(2,)]  # 'a', 'b' distinct; NULL skipped


class TestJoins:
    def make_pair(self):
        left = make_table(
            "l", [("k", SqlType.INTEGER), ("lv", SqlType.TEXT)],
            [(1, "l1"), (2, "l2"), (2, "l2b"), (None, "lnull")],
        )
        right = make_table(
            "r", [("k", SqlType.INTEGER), ("rv", SqlType.TEXT)],
            [(2, "r2"), (3, "r3"), (None, "rnull")],
        )
        return SeqScan(left, "l"), SeqScan(right, "r")

    def expected(self):
        return [(2, "l2", 2, "r2"), (2, "l2b", 2, "r2")]

    def test_hash_join(self):
        left, right = self.make_pair()
        node = HashJoin(
            left, right, [ColumnRef("l", "k")], [ColumnRef("r", "k")], est_rows=2
        )
        assert sorted(node.rows(context())) == self.expected()

    def test_merge_join(self):
        left, right = self.make_pair()
        node = MergeJoin(
            left, right, [ColumnRef("l", "k")], [ColumnRef("r", "k")], est_rows=2
        )
        assert sorted(node.rows(context())) == self.expected()

    def test_nested_loop_with_condition(self):
        left, right = self.make_pair()
        condition = BinaryOp("=", ColumnRef("l", "k"), ColumnRef("r", "k"))
        node = NestedLoopJoin(left, right, condition, est_rows=2)
        assert sorted(node.rows(context())) == self.expected()

    def test_cartesian_nested_loop(self):
        left, right = self.make_pair()
        node = NestedLoopJoin(left, right, None, est_rows=12)
        assert len(list(node.rows(context()))) == 12

    def test_null_keys_never_join(self):
        # the NULL rows on both sides must not pair up under any algorithm
        for algorithm in ("hash", "merge"):
            left, right = self.make_pair()
            cls = HashJoin if algorithm == "hash" else MergeJoin
            node = cls(
                left, right, [ColumnRef("l", "k")], [ColumnRef("r", "k")], est_rows=2
            )
            assert all(row[0] is not None for row in node.rows(context()))


class TestExplainText:
    def test_tree_rendering(self, people):
        scan = SeqScan(people, "p")
        node = Limit(
            Sort(scan, [(ColumnRef("p", "id"), True)]), 3
        )
        text = node.explain()
        lines = text.splitlines()
        assert lines[0].startswith("Limit 3")
        assert "->  Sort" in lines[1]
        assert "->  Seq Scan on people p" in lines[2]
