"""Process executor lane: equivalence, eligibility fallback, recovery.

The process lane ships pickle-safe morsel tasks to worker processes and
must return exactly what the serial pipeline returns.  These tests cover
the cross-process result contract, the planner's per-fragment lane
selection (anything that cannot cross a pickle boundary silently rides
the thread lane; volatile functions stay serial), and the pool's
recovery after a worker process dies mid-query.  See DESIGN.md
section 14.
"""

import pytest

from repro.rdbms.database import Database, DatabaseConfig
from repro.rdbms.errors import ExecutionError
from repro.rdbms.expressions import BinaryOp, ColumnRef, FunctionCall, Literal
from repro.rdbms.planner import Planner
from repro.rdbms.process_worker import ExitTask, run_process_task
from repro.rdbms.sql.parser import parse
from repro.rdbms.types import SqlType

N_ROWS = 9000  # several morsels at the process lane's adaptive granularity


def _populate(database: Database) -> None:
    database.execute("CREATE TABLE t (a integer, b text, c integer)")
    rows = [
        (i, f"s{i % 7}", None if i % 11 == 0 else i % 13) for i in range(N_ROWS)
    ]
    database.insert_rows("t", rows)
    database.analyze()


@pytest.fixture(scope="module")
def lanes():
    databases = {}
    for lane in ("serial", "thread", "process"):
        database = Database(
            f"px_{lane}", DatabaseConfig(parallel_workers=4, executor_lane=lane)
        )
        _populate(database)
        databases[lane] = database
    yield databases
    for database in databases.values():
        database.close()


EQUIVALENCE_QUERIES = [
    "SELECT a, b FROM t WHERE a % 3 = 0",
    "SELECT a + c FROM t WHERE c IS NOT NULL",
    "SELECT a, b, c FROM t WHERE b = 's3' ORDER BY c, a DESC",
    "SELECT b, count(*), sum(a), min(c), max(c), avg(a) FROM t GROUP BY b ORDER BY b",
    "SELECT count(*) FROM t WHERE a BETWEEN 100 AND 4000",
    "SELECT upper(b), length(b) FROM t WHERE a < 500 ORDER BY a",
    "SELECT a FROM t WHERE b LIKE 's%' AND c IN (1, 2, 3) ORDER BY a LIMIT 50",
    "SELECT coalesce(c, -1), count(*) FROM t GROUP BY coalesce(c, -1) ORDER BY 1",
    "SELECT min(a), max(a) FROM t",
    "SELECT a, b FROM t WHERE c IS NULL ORDER BY a DESC LIMIT 25",
]


class TestProcessEquivalence:
    @pytest.mark.parametrize("sql", EQUIVALENCE_QUERIES)
    def test_same_rows_same_order_across_all_lanes(self, lanes, sql):
        results = {lane: database.execute(sql) for lane, database in lanes.items()}
        assert results["thread"].rows == results["serial"].rows
        assert results["process"].rows == results["serial"].rows

    def test_process_lane_is_actually_used(self, lanes):
        result = lanes["process"].execute("SELECT a FROM t WHERE a % 2 = 0")
        assert result.exec_stats["lane"] == "process"
        assert result.exec_stats["workers"] == 4

    def test_serial_lane_never_parallelizes(self, lanes):
        result = lanes["serial"].execute("SELECT a FROM t WHERE a % 2 = 0")
        assert "lane" not in result.exec_stats
        assert "workers" not in result.exec_stats

    def test_single_morsel_still_crosses_the_process_boundary(self, lanes):
        database = lanes["process"]
        database.execute("CREATE TABLE small (x integer)")
        database.insert_rows("small", [(i,) for i in range(200)])
        database.analyze("small")
        result = database.execute("SELECT x FROM small WHERE x % 2 = 0")
        assert result.rows == [(i,) for i in range(0, 200, 2)]
        assert result.exec_stats["lane"] == "process"
        assert result.exec_stats["morsels"] == 1

    def test_explain_analyze_reports_process_lane(self, lanes):
        result = lanes["process"].execute_statement(
            parse("SELECT a FROM t WHERE a % 2 = 0"), analyze=True
        )
        assert "lane=process" in result.plan_text
        assert result.exec_stats["lane"] == "process"
        per_worker = result.exec_stats["per_worker"]
        assert sum(w["tuples_scanned"] for w in per_worker) == N_ROWS


class TestLaneEligibility:
    def test_builtin_functions_ride_the_process_lane(self, lanes):
        text = lanes["process"].explain("SELECT upper(b) FROM t WHERE a > 3")
        assert "lane=process" in text

    def test_closure_udf_falls_back_to_thread_lane(self, lanes):
        database = lanes["process"]
        database.create_function("plus_one", lambda v: v + 1, SqlType.INTEGER)
        text = database.explain("SELECT plus_one(a) FROM t WHERE a > 3")
        assert "workers=4" in text  # still parallel...
        assert "lane=thread" in text  # ...just not cross-process
        result = database.execute("SELECT plus_one(a) FROM t WHERE a >= 8996")
        assert result.rows == [(8997,), (8998,), (8999,), (9000,)]
        assert result.exec_stats["lane"] == "thread"

    def test_unpushed_closure_projection_keeps_the_process_lane(self, lanes):
        # with ORDER BY above it, the projection stays in the parent; the
        # pushed fragment (predicate + sort key) is still pickle-safe
        database = lanes["process"]
        database.create_function("plus_two", lambda v: v + 2, SqlType.INTEGER)
        result = database.execute(
            "SELECT plus_two(a) FROM t WHERE a >= 8996 ORDER BY a"
        )
        assert result.rows == [(8998,), (8999,), (9000,), (9001,)]
        assert result.exec_stats["lane"] == "process"

    def test_volatile_predicate_stays_serial(self, lanes):
        database = lanes["process"]
        database.create_function(
            "wobble", lambda v: v, SqlType.INTEGER, volatile=True
        )
        text = database.explain("SELECT a FROM t WHERE wobble(a) > 3")
        assert "Parallel" not in text

    def test_thread_lane_config_never_uses_processes(self, lanes):
        result = lanes["thread"].execute("SELECT a FROM t WHERE a % 2 = 0")
        assert result.exec_stats["lane"] == "thread"

    def test_sort_and_aggregate_nodes_annotate_their_lane(self, lanes):
        database = lanes["process"]
        assert "lane=process" in database.explain(
            "SELECT a FROM t WHERE a > 3 ORDER BY a"
        )
        assert "lane=process" in database.explain(
            "SELECT b, count(*) FROM t GROUP BY b"
        )


class TestProcessSafePredicate:
    """Unit coverage of the planner's pickle-boundary gate."""

    def _planner(self, database: Database) -> Planner:
        return Planner(
            database.tables,
            database.table_stats,
            database.functions,
            work_mem_bytes=1 << 20,
            parallel_workers=4,
            executor_pool=database.executor_pool,
            executor_lane="process",
        )

    def test_plain_column_predicates_are_safe(self, lanes):
        planner = self._planner(lanes["process"])
        expr = BinaryOp(">", ColumnRef(None, "a"), Literal(3))
        assert planner._fragment_lane([expr]) == "process"

    def test_unpicklable_literal_is_not(self, lanes):
        planner = self._planner(lanes["process"])
        expr = BinaryOp(">", ColumnRef(None, "a"), Literal(lambda: None))
        assert planner._fragment_lane([expr]) == "thread"

    def test_function_without_remote_spec_is_not(self, lanes):
        database = lanes["process"]
        database.create_function("opaque", lambda v: v, SqlType.INTEGER)
        planner = self._planner(database)
        expr = FunctionCall("opaque", (ColumnRef(None, "a"),))
        assert planner._fragment_lane([expr]) == "thread"

    def test_builtin_has_a_remote_spec(self, lanes):
        planner = self._planner(lanes["process"])
        expr = FunctionCall("upper", (ColumnRef(None, "b"),))
        assert planner._fragment_lane([expr]) == "process"


class TestWorkerDeathRecovery:
    def test_dead_worker_fails_the_query_not_the_database(self, lanes):
        database = lanes["process"]
        pool = database.executor_pool
        with pytest.raises(ExecutionError, match="worker process died"):
            pool.map_tasks(run_process_task, [ExitTask()])
        # the pool was discarded; the next query spawns a fresh one
        result = database.execute("SELECT count(*) FROM t")
        assert result.rows == [(N_ROWS,)]
        assert result.exec_stats["lane"] == "process"
