"""Unit tests for the scalar/aggregate function registry."""

import pytest

from repro.rdbms.cost import CostCounters
from repro.rdbms.errors import CatalogError, ExecutionError
from repro.rdbms.functions import FunctionRegistry
from repro.rdbms.types import SqlType


@pytest.fixture()
def registry():
    return FunctionRegistry(CostCounters())


class TestScalars:
    def test_builtins_present(self, registry):
        assert registry.scalar("length").fn("abc") == 3
        assert registry.scalar("length").fn([1, 2]) == 2
        assert registry.scalar("abs").fn(-3) == 3
        assert registry.scalar("lower").fn("ABC") == "abc"
        assert registry.scalar("upper").fn("abc") == "ABC"
        assert registry.scalar("round").fn(2.567, 1) == 2.6

    def test_builtins_null_safe(self, registry):
        for name in ("length", "abs", "lower", "upper", "sqrt"):
            assert registry.scalar(name).fn(None) is None

    def test_sqrt_negative_raises(self, registry):
        with pytest.raises(ExecutionError):
            registry.scalar("sqrt").fn(-1)

    def test_array_length_type_checked(self, registry):
        assert registry.scalar("array_length").fn([1, 2, 3]) == 3
        with pytest.raises(ExecutionError):
            registry.scalar("array_length").fn("not-an-array")

    def test_register_and_lookup_case_insensitive(self, registry):
        registry.register_scalar("MyFn", lambda v: v, SqlType.TEXT)
        assert registry.has_scalar("myfn")
        assert registry.scalar("MYFN").name == "myfn"

    def test_unknown_scalar(self, registry):
        with pytest.raises(CatalogError):
            registry.scalar("ghost")

    def test_user_functions_count_as_udf(self, registry):
        implementation = registry.register_scalar("f", lambda v: v, SqlType.TEXT)
        assert implementation.counts_as_udf
        assert not registry.scalar("length").counts_as_udf


class TestAggregates:
    def run_aggregate(self, registry, name, values):
        aggregate = registry.aggregate(name)
        state = aggregate.init()
        for value in values:
            if value is None and aggregate.skip_nulls:
                continue
            state = aggregate.step(state, value)
        return aggregate.final(state)

    def test_count(self, registry):
        assert self.run_aggregate(registry, "count", [1, 2, 3]) == 3
        assert self.run_aggregate(registry, "count", []) == 0

    def test_sum(self, registry):
        assert self.run_aggregate(registry, "sum", [1, 2, 3]) == 6
        assert self.run_aggregate(registry, "sum", []) is None

    def test_min_max(self, registry):
        assert self.run_aggregate(registry, "min", [3, 1, 2]) == 1
        assert self.run_aggregate(registry, "max", ["a", "c", "b"]) == "c"

    def test_avg(self, registry):
        assert self.run_aggregate(registry, "avg", [1, 2, 3, 4]) == 2.5
        assert self.run_aggregate(registry, "avg", []) is None

    def test_is_aggregate(self, registry):
        assert registry.is_aggregate("COUNT")
        assert not registry.is_aggregate("length")

    def test_unknown_aggregate(self, registry):
        with pytest.raises(CatalogError):
            registry.aggregate("median")
