"""Unit tests for ANALYZE statistics and selectivity estimation."""

import pytest

from repro.rdbms.cost import CostCounters, DiskBudget
from repro.rdbms.expressions import ColumnRef
from repro.rdbms.sql.parser import parse_expression
from repro.rdbms.statistics import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    DEFAULT_UDF_PREDICATE_ROWS,
    SelectivityEstimator,
    analyze_table,
)
from repro.rdbms.storage import BufferPool, Column, HeapTable, Schema
from repro.rdbms.types import SqlType

N_ROWS = 1000


@pytest.fixture(scope="module")
def stats():
    counters = CostCounters()
    table = HeapTable(
        "t",
        Schema(
            [
                Column("id", SqlType.INTEGER),
                Column("bucket", SqlType.INTEGER),
                Column("label", SqlType.TEXT),
                Column("maybe", SqlType.TEXT),
            ]
        ),
        counters,
        BufferPool(256, counters),
        DiskBudget(),
    )
    for i in range(N_ROWS):
        table.insert(
            (
                i,
                i % 10,
                f"label{i % 4}",
                "present" if i % 5 == 0 else None,
            )
        )
    return analyze_table(table)


def estimator_for(stats, total_rows=N_ROWS):
    def lookup(ref: ColumnRef):
        return stats.columns.get(ref.name)

    return SelectivityEstimator(lookup, total_rows)


class TestAnalyze:
    def test_row_count(self, stats):
        assert stats.row_count == N_ROWS

    def test_n_distinct(self, stats):
        assert stats.columns["id"].n_distinct == N_ROWS
        assert stats.columns["bucket"].n_distinct == 10
        assert stats.columns["label"].n_distinct == 4

    def test_null_frac(self, stats):
        assert stats.columns["maybe"].null_frac == pytest.approx(0.8)
        assert stats.columns["id"].null_frac == 0.0

    def test_mcv_frequencies(self, stats):
        mcv = stats.columns["bucket"].mcv
        assert pytest.approx(sum(mcv.values()), abs=0.01) == 1.0
        assert all(pytest.approx(f, abs=0.01) == 0.1 for f in mcv.values())

    def test_histogram_and_bounds(self, stats):
        column = stats.columns["id"]
        assert column.min_value == 0
        assert column.max_value == N_ROWS - 1
        assert column.has_histogram

    def test_empty_table(self):
        counters = CostCounters()
        table = HeapTable(
            "e",
            Schema([Column("x", SqlType.INTEGER)]),
            counters,
            BufferPool(8, counters),
            DiskBudget(),
        )
        empty = analyze_table(table)
        assert empty.row_count == 0
        assert empty.columns["x"].n_distinct == 0


class TestSelectivity:
    def test_equality_uses_mcv(self, stats):
        estimator = estimator_for(stats)
        selectivity = estimator.estimate(parse_expression("bucket = 3"))
        assert selectivity == pytest.approx(0.1, abs=0.02)

    def test_equality_unique_column(self, stats):
        estimator = estimator_for(stats)
        selectivity = estimator.estimate(parse_expression("id = 17"))
        assert selectivity <= 0.01

    def test_range_via_histogram(self, stats):
        estimator = estimator_for(stats)
        half = estimator.estimate(parse_expression("id < 500"))
        assert half == pytest.approx(0.5, abs=0.05)
        narrow = estimator.estimate(parse_expression("id BETWEEN 100 AND 199"))
        assert narrow == pytest.approx(0.1, abs=0.05)

    def test_flipped_comparison(self, stats):
        estimator = estimator_for(stats)
        selectivity = estimator.estimate(parse_expression("500 > id"))
        assert selectivity == pytest.approx(0.5, abs=0.05)

    def test_is_null_uses_null_frac(self, stats):
        estimator = estimator_for(stats)
        assert estimator.estimate(parse_expression("maybe IS NULL")) == pytest.approx(
            0.8, abs=0.01
        )
        assert estimator.estimate(
            parse_expression("maybe IS NOT NULL")
        ) == pytest.approx(0.2, abs=0.01)

    def test_and_multiplies_or_adds(self, stats):
        estimator = estimator_for(stats)
        conjunction = estimator.estimate(parse_expression("bucket = 3 AND label = 'label1'"))
        assert conjunction == pytest.approx(0.1 * 0.25, abs=0.01)
        disjunction = estimator.estimate(parse_expression("bucket = 3 OR bucket = 4"))
        assert 0.15 < disjunction < 0.25

    def test_not_inverts(self, stats):
        estimator = estimator_for(stats)
        assert estimator.estimate(
            parse_expression("NOT bucket = 3")
        ) == pytest.approx(0.9, abs=0.02)

    def test_unknown_column_defaults(self, stats):
        estimator = estimator_for(stats)
        assert (
            estimator.estimate(parse_expression("mystery = 1"))
            == DEFAULT_EQ_SELECTIVITY
        )
        assert (
            estimator.estimate(parse_expression("mystery > 1"))
            == DEFAULT_RANGE_SELECTIVITY
        )


class TestUdfDefault:
    """The paper's core Table 2 mechanism: predicates behind UDFs get a
    fixed row estimate, whatever their true selectivity."""

    def test_udf_predicate_fixed_rows(self, stats):
        estimator = estimator_for(stats)
        predicate = parse_expression("extract_key_num(data, 'num') = 3")
        expected = DEFAULT_UDF_PREDICATE_ROWS / N_ROWS
        assert estimator.estimate(predicate) == pytest.approx(expected)

    def test_udf_range_same_default(self, stats):
        estimator = estimator_for(stats)
        narrow = parse_expression("extract_key_num(data, 'num') BETWEEN 1 AND 2")
        wide = parse_expression("extract_key_num(data, 'num') BETWEEN 1 AND 900")
        # identical estimates regardless of the true range width
        assert estimator.estimate(narrow) == estimator.estimate(wide)

    def test_small_table_clamps_to_one(self, stats):
        estimator = estimator_for(stats, total_rows=50)
        predicate = parse_expression("f(x) = 1")
        assert estimator.estimate(predicate) == 1.0
