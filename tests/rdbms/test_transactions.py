"""Unit tests for WAL and transactions."""

import threading

import pytest

from repro.rdbms.cost import CostCounters
from repro.rdbms.errors import TransactionError
from repro.rdbms.transactions import (
    TransactionManager,
    TxnState,
    WalRecordType,
)


def make_manager() -> tuple[TransactionManager, CostCounters]:
    counters = CostCounters()
    return TransactionManager(counters), counters


class TestWal:
    def test_lsn_monotonic(self):
        manager, _counters = make_manager()
        txn = manager.begin()
        txn.log_insert("t", 0, 10, undo=lambda: None)
        txn.log_insert("t", 1, 10, undo=lambda: None)
        manager.finish(txn)
        lsns = [record.lsn for record in manager.wal.records]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == len(lsns)

    def test_record_types_for_committed_txn(self):
        manager, _counters = make_manager()
        txn = manager.begin()
        txn.log_update("t", 3, 20, undo=lambda: None)
        manager.finish(txn)
        types = [record.record_type for record in manager.wal.records_for(txn.txn_id)]
        assert types == [
            WalRecordType.BEGIN,
            WalRecordType.UPDATE,
            WalRecordType.COMMIT,
        ]

    def test_wal_counters(self):
        manager, counters = make_manager()
        txn = manager.begin()
        txn.log_insert("t", 0, 100, undo=lambda: None)
        manager.finish(txn)
        assert counters.wal_records == 3  # BEGIN, INSERT, COMMIT
        assert counters.wal_bytes > 100


class TestTransactionLifecycle:
    def test_abort_runs_undo_in_reverse(self):
        manager, _counters = make_manager()
        order: list[int] = []
        txn = manager.begin()
        txn.log_insert("t", 0, 1, undo=lambda: order.append(0))
        txn.log_insert("t", 1, 1, undo=lambda: order.append(1))
        txn.log_insert("t", 2, 1, undo=lambda: order.append(2))
        manager.finish(txn, commit=False)
        assert order == [2, 1, 0]
        assert txn.state is TxnState.ABORTED

    def test_commit_discards_undo(self):
        manager, _counters = make_manager()
        called = []
        txn = manager.begin()
        txn.log_delete("t", 0, 1, undo=lambda: called.append(1))
        manager.finish(txn, commit=True)
        assert called == []
        assert txn.state is TxnState.COMMITTED

    def test_double_commit_rejected(self):
        manager, _counters = make_manager()
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_log_after_commit_rejected(self):
        manager, _counters = make_manager()
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.log_insert("t", 0, 1, undo=lambda: None)


class TestAutocommit:
    def test_commits_on_clean_exit(self):
        manager, _counters = make_manager()
        with manager.autocommit() as txn:
            txn.log_insert("t", 0, 1, undo=lambda: None)
        assert txn.state is TxnState.COMMITTED
        assert not manager.active

    def test_rolls_back_on_exception(self):
        manager, _counters = make_manager()
        undone = []
        with pytest.raises(ValueError):
            with manager.autocommit() as txn:
                txn.log_insert("t", 0, 1, undo=lambda: undone.append(1))
                raise ValueError("boom")
        assert undone == [1]
        assert txn.state is TxnState.ABORTED


class TestTransactionManagerThreadSafety:
    def test_concurrent_begin_finish_allocates_unique_ids(self):
        # regression: next_txn_id was an unsynchronized read-modify-write
        # and `active` was mutated without a lock; the service layer calls
        # begin() from worker threads concurrently with the materializer
        # daemon's autocommit, and a duplicated txn_id corrupts the WAL's
        # per-txn index and recovery replay
        manager, _counters = make_manager()
        n_threads, per_thread = 8, 200
        barrier = threading.Barrier(n_threads)
        ids: list[int] = []
        ids_lock = threading.Lock()
        errors: list[BaseException] = []

        def worker() -> None:
            barrier.wait()
            try:
                for _ in range(per_thread):
                    txn = manager.begin()
                    with ids_lock:
                        ids.append(txn.txn_id)
                    manager.finish(txn, commit=True)
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not errors
        assert len(ids) == n_threads * per_thread
        assert len(set(ids)) == len(ids)
        assert not manager.active
        # WAL BEGIN frames match the handed-out ids one-to-one
        begin_ids = [
            record.txn_id
            for record in manager.wal.records
            if record.record_type is WalRecordType.BEGIN
        ]
        assert sorted(begin_ids) == sorted(ids)
