"""Unit tests for the benchmark harness (timing, tables, scales)."""

import pytest

from repro.harness.scale import large_scale, small_scale
from repro.harness.tables import format_table
from repro.harness.timing import (
    Measurement,
    best_of,
    measure,
    mongo_modelled_io_seconds,
)
from repro.rdbms.cost import CostCounters, IoCostModel
from repro.rdbms.errors import DiskFullError


class TestMeasure:
    def test_captures_result_and_time(self):
        measurement = measure("demo", lambda: 42)
        assert measurement.result == 42
        assert measurement.failed is None
        assert measurement.wall_seconds >= 0

    def test_expected_failure_captured(self):
        def boom():
            raise DiskFullError(10, 5)

        measurement = measure("demo", boom, expected_failures=(DiskFullError,))
        assert measurement.failed == "DiskFullError"
        assert measurement.cell() == "FAIL(DiskFullError)"

    def test_unexpected_failure_propagates(self):
        with pytest.raises(ValueError):
            measure("demo", lambda: (_ for _ in ()).throw(ValueError("x")))

    def test_counter_deltas_and_io_model(self):
        counters = CostCounters()

        def work():
            counters.pages_read += 10

        measurement = measure("demo", work, counters=counters, io_model=IoCostModel())
        assert measurement.counter_deltas["pages_read"] == 10
        assert measurement.modelled_io_seconds == pytest.approx(10 * 30e-6)
        assert measurement.effective_seconds > measurement.wall_seconds

    def test_best_of_returns_fastest_success(self):
        calls = []

        def flaky():
            calls.append(1)
            return len(calls)

        measurement = best_of("demo", flaky, repeats=3)
        assert measurement.failed is None
        assert len(calls) == 3

    def test_mongo_io_model(self):
        assert mongo_modelled_io_seconds(275_000_000) == pytest.approx(1.0)


class TestTables:
    def test_format_alignment_and_floats(self):
        text = format_table(
            ["query", "Sinew"], [["q1", 0.12345], ["q10", "FAIL(X)"]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "0.1235" in text or "0.1234" in text
        assert "FAIL(X)" in text
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # every row the same width

    def test_none_renders_empty(self):
        text = format_table(["a"], [[None]])
        assert "None" not in text


class TestScales:
    def test_small_scale_is_memory_resident(self):
        scale = small_scale()
        assert scale.use_effective_time is False
        assert scale.eav_headroom_bytes is None
        assert scale.buffer_pool_pages * 8192 > 100 * 1024 * 1024

    def test_large_scale_constrains_resources(self):
        scale = large_scale()
        assert scale.use_effective_time is True
        assert scale.eav_headroom_bytes is not None
        assert scale.n_records > small_scale().n_records

    def test_repro_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert small_scale().n_records == 2000
        monkeypatch.setenv("REPRO_SCALE", "10")
        assert small_scale().n_records == 40000
