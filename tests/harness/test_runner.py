"""Tests for the benchmark runner (system building, measurement hooks)."""

import pytest

from repro.harness.runner import SystemRun, build_systems, result_rows, run_suite
from repro.harness.scale import small_scale
from repro.nobench import NoBenchGenerator


@pytest.fixture(scope="module")
def tiny_world():
    scale = small_scale()
    object.__setattr__(scale, "n_records", 600)
    return build_systems(scale, NoBenchGenerator(600))


class TestBuildSystems:
    def test_all_four_by_default(self, tiny_world):
        runs, _params = tiny_world
        assert [run.name for run in runs] == ["Sinew", "MongoDB", "EAV", "PG JSON"]

    def test_subset_selection(self):
        scale = small_scale()
        object.__setattr__(scale, "n_records", 300)
        runs, _params = build_systems(
            scale, NoBenchGenerator(300), systems=("Sinew", "PG JSON")
        )
        assert [run.name for run in runs] == ["Sinew", "PG JSON"]

    def test_load_measurements_attached(self, tiny_world):
        runs, _params = tiny_world
        for run in runs:
            assert run.load_measurement is not None
            assert run.load_measurement.failed is None
            assert run.load_measurement.wall_seconds > 0

    def test_rdbms_systems_have_counters(self, tiny_world):
        runs, _params = tiny_world
        by_name = {run.name: run for run in runs}
        assert by_name["Sinew"].counters is not None
        assert by_name["EAV"].counters is not None
        assert by_name["MongoDB"].mongo is not None


class TestMeasurementHooks:
    def test_mongo_measure_models_scan_io(self, tiny_world):
        runs, _params = tiny_world
        mongo = next(run for run in runs if run.name == "MongoDB")
        measurement = mongo.measure("q1", lambda: mongo.adapter.q1())
        assert measurement.modelled_io_seconds > 0

    def test_rdbms_measure_collects_deltas(self, tiny_world):
        runs, _params = tiny_world
        sinew = next(run for run in runs if run.name == "Sinew")
        measurement = sinew.measure("q1", lambda: sinew.adapter.q1())
        assert measurement.counter_deltas["tuples_scanned"] > 0


class TestSuiteAndRows:
    def test_run_suite_shape(self, tiny_world):
        runs, _params = tiny_world
        results = run_suite(runs, ["q1", "q5"], repeats=1)
        assert set(results) == {"q1", "q5"}
        for per_system in results.values():
            assert set(per_system) == {"Sinew", "MongoDB", "EAV", "PG JSON"}

    def test_result_rows_render_failures(self, tiny_world):
        runs, _params = tiny_world
        results = run_suite(runs, ["q7"], repeats=1)
        names = [run.name for run in runs]
        rows = result_rows(results, names, use_effective=False)
        pg_cell = rows[0][1 + names.index("PG JSON")]
        assert pg_cell == "FAIL(TypeCastError)"

    def test_update_runs_once(self, tiny_world):
        runs, _params = tiny_world
        results = run_suite(runs[:1], ["update"], repeats=3)
        assert results["update"]["Sinew"].failed is None
