"""Prepared-plan cache: reuse across statements, invalidation on change.

The dangerous case is a *stale* plan: SELECT rewrites depend on catalog
state (virtual extraction vs physical column vs the dirty-column
COALESCE bridge), so a plan cached before a materializer flip must never
execute afterwards.  Invalidation is epoch-tokened -- ``schema_epoch``
moves on column-state flips, ``data_epoch`` on loads, logical DML,
collection DDL, and materializer pass completion (which *drops* the
physical column on dematerialize, the nastiest stale-plan shape).
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.core import SinewDB
from repro.core.plan_cache import PlanCache, normalize_sql
from repro.core.sinew import SinewConfig
from repro.rdbms.types import SqlType


@pytest.fixture
def sdb():
    instance = SinewDB("plan-cache-test", SinewConfig(plan_cache_size=8))
    instance.create_collection("docs")
    yield instance
    instance.close()


class TestNormalizeSql:
    def test_whitespace_and_keyword_case_insensitive(self):
        assert normalize_sql("SELECT a FROM docs") == normalize_sql(
            "select   a\n  from docs"
        )

    def test_literals_and_identifiers_distinguish(self):
        base = normalize_sql("SELECT a FROM docs WHERE b = 1")
        assert base != normalize_sql("SELECT a FROM docs WHERE b = 2")
        assert base != normalize_sql("SELECT a FROM other WHERE b = 1")

    def test_unlexable_sql_returns_none(self):
        assert normalize_sql("SELECT ???") is None

    def test_separator_bytes_in_literals_stay_injective(self):
        # regression: the key joins tokens with \x1f/\x1e, and a string
        # literal *containing* those bytes used to collide with a
        # different statement whose token boundaries fall at them --
        # serving the wrong cached plan
        embedded = normalize_sql("SELECT 'a\x1fs\x1eb' FROM docs")
        split = normalize_sql("SELECT 'a' 'b' FROM docs")
        assert embedded is not None and split is not None
        assert embedded != split
        # escaping is deterministic: the same literal still shares a key
        assert embedded == normalize_sql("SELECT  'a\x1fs\x1eb'  FROM docs")
        # and a literal backslash never collides with the escape prefix
        assert normalize_sql("SELECT '\\u' FROM docs") != normalize_sql(
            "SELECT '\x1f' FROM docs"
        )


def plan(token=(0, 0), label="plan"):
    """A minimal cache entry: only the ``token`` attribute matters here."""
    return SimpleNamespace(token=token, label=label)


class TestPlanCacheUnit:
    def test_hit_miss_and_stale_eviction(self):
        cache = PlanCache(4)
        entry = plan(token=(0, 0))
        assert cache.lookup("k", (0, 0)) is None
        cache.store("k", entry)
        assert cache.lookup("k", (0, 0)) is entry
        # any token movement invalidates
        assert cache.lookup("k", (1, 0)) is None
        stats = cache.stats()
        assert stats == {
            "size": 0,
            "capacity": 4,
            "hits": 1,
            "misses": 2,
            "evictions": 0,
            "stale_evictions": 1,
        }

    def test_lru_eviction_at_capacity(self):
        cache = PlanCache(2)
        a, b, c = plan(label="a"), plan(label="b"), plan(label="c")
        cache.store("a", a)
        cache.store("b", b)
        assert cache.lookup("a", (0, 0)) is a  # refresh a
        cache.store("c", c)  # evicts b (least recent)
        assert cache.lookup("b", (0, 0)) is None
        assert cache.lookup("a", (0, 0)) is a
        assert cache.lookup("c", (0, 0)) is c
        assert cache.stats()["evictions"] == 1

    def test_clear(self):
        cache = PlanCache(4)
        cache.store("a", plan())
        cache.clear()
        assert len(cache) == 0
        assert cache.lookup("a", (0, 0)) is None


class TestPlanCacheIntegration:
    def test_repeated_query_hits_and_counters_surface_in_status(self, sdb):
        sdb.load("docs", [{"a": 1}])
        sdb.query("SELECT a FROM docs")
        sdb.query("SELECT a FROM docs")
        sdb.query("select  a  from docs")  # normalization: same entry
        stats = sdb.status()["plan_cache"]
        assert stats["hits"] == 2
        assert stats["misses"] == 1

    def test_disabled_by_default_in_embedded_config(self):
        instance = SinewDB("plan-cache-off")
        try:
            assert instance.plan_cache is None
            assert instance.status()["plan_cache"] is None
        finally:
            instance.close()

    def test_use_plan_cache_false_bypasses(self, sdb):
        sdb.load("docs", [{"a": 1}])
        sdb.query("SELECT a FROM docs", use_plan_cache=False)
        sdb.query("SELECT a FROM docs", use_plan_cache=False)
        stats = sdb.plan_cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_load_bumps_data_epoch_and_invalidates(self, sdb):
        sdb.load("docs", [{"a": 1}])
        token = sdb.catalog.plan_token()
        sdb.query("SELECT a FROM docs")
        # a load can add attributes / change occurrence counts, which the
        # analyzer's NULL-pruning consults at plan time
        sdb.load("docs", [{"a": 2, "brand_new": True}])
        assert sdb.catalog.plan_token() != token
        assert sdb.query("SELECT a FROM docs").rows == [(1,), (2,)]
        assert sdb.plan_cache.stats()["stale_evictions"] >= 1

    def test_logical_update_and_delete_bump_data_epoch(self, sdb):
        sdb.load("docs", [{"a": 1}])
        token = sdb.catalog.plan_token()
        sdb.execute("UPDATE docs SET a = 2 WHERE a = 1")
        after_update = sdb.catalog.plan_token()
        assert after_update != token
        sdb.execute("DELETE FROM docs WHERE a = 2")
        assert sdb.catalog.plan_token() != after_update

    def test_materialize_flip_evicts_cached_plan(self, sdb):
        sdb.load("docs", [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert sdb.query("SELECT a FROM docs WHERE a > 1").rows == [(2,)]
        before = sdb.plan_cache.stats()["stale_evictions"]
        sdb.materialize("docs", "a", SqlType.INTEGER)
        # column is now materialized+dirty: the cached virtual-extraction
        # plan is stale; the fresh plan must take the COALESCE bridge and
        # still see every value (none moved yet)
        assert sdb.query("SELECT a FROM docs WHERE a > 1").rows == [(2,)]
        assert sdb.plan_cache.stats()["stale_evictions"] == before + 1

    def test_cached_bridge_plan_is_evicted_when_pass_finishes(self, sdb):
        """The regression the data epoch exists for: a plan cached while a
        column was dirty (COALESCE bridge over the physical column) must
        not survive the materializer finishing -- on a dematerialize pass
        the finish *drops* the physical column the bridge references."""
        sdb.load("docs", [{"a": 1}, {"a": 2}])
        sdb.materialize("docs", "a", SqlType.INTEGER)
        sdb.run_materializer("docs")
        # dirty -> clean flip done; now reverse it: dematerialize marks
        # dirty again and queries bridge over the (populated) column
        sdb.dematerialize("docs", "a", SqlType.INTEGER)
        assert sdb.query("SELECT a FROM docs ORDER BY a").rows == [(1,), (2,)]
        token_dirty = sdb.catalog.plan_token()
        # the reverse pass finishes and drops the physical column
        sdb.run_materializer("docs")
        assert sdb.catalog.plan_token() != token_dirty
        # the cached bridge plan references the dropped column; a stale
        # serve here would error (or silently read garbage)
        assert sdb.query("SELECT a FROM docs ORDER BY a").rows == [(1,), (2,)]

    def test_flip_mid_cache_lifetime_results_match_uncached(self, sdb):
        """End-to-end equivalence: every phase of the materialization
        lifecycle returns the same rows with and without the cache."""
        sdb.load("docs", [{"a": i, "b": f"doc{i}"} for i in range(10)])
        sql = 'SELECT a, b FROM docs WHERE a >= 5'

        def both():
            cached = sdb.query(sql).rows
            uncached = sdb.query(sql, use_plan_cache=False).rows
            assert cached == uncached
            return cached

        assert len(both()) == 5
        sdb.materialize("docs", "a", SqlType.INTEGER)
        assert len(both()) == 5
        sdb.run_materializer("docs")
        assert len(both()) == 5
        sdb.dematerialize("docs", "a", SqlType.INTEGER)
        assert len(both()) == 5
        sdb.run_materializer("docs")
        assert len(both()) == 5
