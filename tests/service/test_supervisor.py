"""Daemon supervision: crash detection, bounded restarts, tripping.

Unit tests drive :class:`Supervisor` with stub workers for deterministic
policy coverage; integration tests crash the real materializer daemon
under a supervised service and watch it come back (and its crash surface
in ``status()`` / ``\\daemon`` / health).
"""

from __future__ import annotations

import time

import pytest

from repro.core import SinewConfig, SinewDB
from repro.rdbms.types import SqlType
from repro.core.supervisor import (
    PeriodicWorker,
    Supervisor,
    SupervisorPolicy,
)
from repro.service import ServiceClient, ServiceConfig, SinewService
from repro.testing.faults import FaultInjector


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


FAST = SupervisorPolicy(
    backoff_base=0.01, backoff_max=0.05, max_restarts=3, stability_window=0.2,
    poll_interval=0.005,
)


class StubWorker:
    """Duck-typed supervised worker with a scriptable crash state."""

    def __init__(self, name="stub", fail_restarts=0):
        self.name = name
        self.down = False
        self.restarts = 0
        self._fail_restarts = fail_restarts

    def crashed(self) -> bool:
        return self.down

    def restart(self) -> None:
        if self._fail_restarts > 0:
            self._fail_restarts -= 1
            raise RuntimeError("restart refused")
        self.restarts += 1
        self.down = False

    def describe_error(self) -> str | None:
        return "stub crash" if self.down else None


class TestSupervisorPolicy:
    def test_restarts_a_crashed_worker(self):
        worker = StubWorker()
        supervisor = Supervisor(FAST)
        supervisor.add(worker)
        supervisor.start()
        try:
            worker.down = True
            assert wait_until(lambda: worker.restarts == 1)
            status = supervisor.status()["stub"]
            assert status["restarts"] == 1
            assert not status["tripped"]
        finally:
            supervisor.stop()

    def test_trips_after_budget_exhausted(self):
        # a worker whose restart always fails burns one failure per
        # attempt; past max_restarts the supervisor stops touching it
        worker = StubWorker(fail_restarts=99)
        supervisor = Supervisor(FAST)
        supervisor.add(worker)
        supervisor.start()
        try:
            worker.down = True
            assert wait_until(lambda: supervisor.tripped() == ["stub"])
            assert worker.restarts == 0
            status = supervisor.status()["stub"]
            assert status["tripped"]
            assert "restart refused" in status["last_error"]
            # tripped means *left alone*: give it time to prove it
            time.sleep(0.1)
            assert worker.restarts == 0
        finally:
            supervisor.stop()

    def test_reset_untrips_and_restores_budget(self):
        worker = StubWorker(fail_restarts=99)
        supervisor = Supervisor(FAST)
        supervisor.add(worker)
        supervisor.start()
        try:
            worker.down = True
            assert wait_until(lambda: supervisor.tripped() == ["stub"])
            worker._fail_restarts = 0  # the underlying condition is fixed
            supervisor.reset()
            assert wait_until(lambda: worker.restarts >= 1)
            assert supervisor.tripped() == []
        finally:
            supervisor.stop()

    def test_stability_window_resets_failure_budget(self):
        worker = StubWorker()
        supervisor = Supervisor(FAST)
        supervisor.add(worker)
        supervisor.start()
        try:
            # two crash/restart cycles, each followed by a stretch of
            # healthy uptime longer than the stability window
            for expected in (1, 2):
                worker.down = True
                assert wait_until(lambda: worker.restarts == expected)
                time.sleep(FAST.stability_window * 2)
            assert supervisor.status()["stub"]["consecutive_failures"] == 0
        finally:
            supervisor.stop()

    def test_restart_faults_count_against_the_budget(self):
        # the supervisor.restart injection point makes restarts fail,
        # driving the trip logic from the outside
        worker = StubWorker()
        injector = FaultInjector()
        supervisor = Supervisor(FAST, faults_provider=lambda: injector)
        supervisor.add(worker)
        supervisor.start()
        try:
            injector.plan("supervisor.restart", "raise", count=None)
            worker.down = True
            assert wait_until(lambda: supervisor.tripped() == ["stub"])
            assert worker.restarts == 0
            injector.reset()
            supervisor.reset()
            assert wait_until(lambda: worker.restarts == 1)
        finally:
            supervisor.stop()


class TestPeriodicWorker:
    def test_ticks_and_stops(self):
        worker = PeriodicWorker("ticker", 0.01, lambda: None)
        worker.start()
        assert wait_until(lambda: worker.ticks >= 3)
        worker.stop()
        assert worker.state == "stopped"
        assert not worker.is_alive()

    def test_escaping_exception_crashes_the_worker(self):
        def tick():
            raise ValueError("tick went bad")

        worker = PeriodicWorker("crasher", 0.01, tick)
        worker.start()
        assert wait_until(worker.crashed)
        assert worker.state == "crashed"
        assert "tick went bad" in worker.last_error
        assert worker.last_error_at is not None

    def test_supervisor_restarts_a_crashed_periodic_worker(self):
        crashes = {"left": 1}

        def tick():
            if crashes["left"] > 0:
                crashes["left"] -= 1
                raise ValueError("transient")

        worker = PeriodicWorker("flaky", 0.01, tick)
        worker.start()
        supervisor = Supervisor(FAST)
        supervisor.add(worker)
        supervisor.start()
        try:
            assert wait_until(lambda: worker.ticks >= 2)
            assert supervisor.status()["flaky"]["restarts"] == 1
        finally:
            supervisor.stop()
            worker.stop()


class TestSupervisedDaemon:
    def test_daemon_crash_is_restarted_under_service(self):
        sdb = SinewDB("supervised", config=SinewConfig(daemon_idle_sleep=0.002))
        injector = FaultInjector()
        sdb.attach_faults(injector)
        sdb.start_daemon()
        # tighten the restart cadence before the service builds its own
        sdb.supervise(FAST)
        service = SinewService(sdb, ServiceConfig(port=0))
        service.start_in_thread()
        try:
            with ServiceClient("127.0.0.1", service.port) as client:
                client.load("docs", [{"a": index} for index in range(8)])
                injector.kill_at("daemon.before_step")
                sdb.materialize("docs", "a", SqlType.INTEGER)  # queue daemon work
                assert wait_until(
                    lambda: sdb.supervisor.status()["materializer"]["restarts"] >= 1
                )
                assert wait_until(lambda: sdb.daemon.is_alive())
                # the restarted daemon finishes the materialization pass
                assert wait_until(lambda: sdb.daemon.status().idle)
            status = sdb.status()
            assert status["supervisor"]["materializer"]["restarts"] >= 1
        finally:
            injector.reset()
            service.stop_in_thread()
            sdb.attach_faults(None)
            sdb.close()

    def test_unsupervised_daemon_stays_crashed(self):
        # the embedded freeze-on-crash contract is untouched when nobody
        # calls supervise()
        sdb = SinewDB("frozen", config=SinewConfig(daemon_idle_sleep=0.002))
        injector = FaultInjector()
        sdb.attach_faults(injector)
        sdb.start_daemon()
        try:
            sdb.create_collection("docs")
            sdb.load("docs", [{"a": index} for index in range(8)])
            injector.kill_at("daemon.before_step")
            sdb.materialize("docs", "a", SqlType.INTEGER)
            assert wait_until(lambda: sdb.daemon.state == "crashed")
            time.sleep(0.1)
            assert sdb.daemon.state == "crashed"
            assert sdb.supervisor is None
        finally:
            injector.reset()
            sdb.attach_faults(None)
            sdb.close()

    def test_health_carries_daemon_crash_details(self):
        sdb = SinewDB("visible", config=SinewConfig(daemon_idle_sleep=0.002))
        injector = FaultInjector()
        sdb.attach_faults(injector)
        sdb.start_daemon()
        # no supervision: the crash must stay visible, not get repaired
        service = SinewService(sdb, ServiceConfig(port=0, supervise=False))
        service.start_in_thread()
        try:
            with ServiceClient("127.0.0.1", service.port) as client:
                client.load("docs", [{"a": index} for index in range(8)])
                injector.kill_at("daemon.before_step")
                sdb.materialize("docs", "a", SqlType.INTEGER)
                assert wait_until(lambda: sdb.daemon.state == "crashed")
                health = client.health()
                daemon = health["daemon"]
                assert daemon["state"] == "crashed"
                assert daemon["last_error"]
                assert daemon["last_error_at"] is not None
                # and the engine-side status block agrees
                status = sdb.status()["daemon"]
                assert status["state"] == "crashed"
                assert status["last_error"]
        finally:
            injector.reset()
            service.stop_in_thread()
            sdb.attach_faults(None)
            sdb.close()
