"""Fault injection at the service layer: sessions die, the engine doesn't.

The three registered points (``service.accept``, ``service.execute``,
``service.respond``) bracket a request's life.  The invariant under test
at every one of them: a killed or errored *session* must never poison
the shared SinewDB -- no leaked catalog latch, no orphaned transaction,
no held write latch, and other sessions (current and future) keep
working with correct results.
"""

from __future__ import annotations

import pytest

from repro.core import SinewDB
from repro.service import ServiceClient, ServiceConfig, ServiceError, SinewService
from repro.testing.faults import FaultInjector, known_points


@pytest.fixture
def harness():
    sdb = SinewDB("faults-test")
    injector = FaultInjector()
    sdb.attach_faults(injector)
    service = SinewService(sdb, ServiceConfig(port=0))
    service.start_in_thread()
    yield sdb, injector, service
    service.stop_in_thread()
    sdb.attach_faults(None)
    sdb.close()


def connect(service) -> ServiceClient:
    return ServiceClient("127.0.0.1", service.port)


def assert_engine_healthy(sdb, service):
    """The shared-state postconditions every fault scenario must meet."""
    assert sdb.catalog.latch_owner is None
    assert not sdb.db.txn_manager.active
    assert not service.write_lock.locked()
    # and the engine still takes work from a fresh session
    with connect(service) as probe:
        probe.load("health", [{"ok": 1}])
        assert probe.query("SELECT ok FROM health").rows == [(1,)]


def test_service_points_are_registered():
    points = known_points()
    for name in ("service.accept", "service.execute", "service.respond"):
        assert name in points


def test_fault_at_accept_rejects_connection_cleanly(harness):
    sdb, injector, service = harness
    injector.plan("service.accept", "raise")
    with pytest.raises(ServiceError) as info:
        connect(service)
    assert info.value.code == "injected"
    # the failed admission registered nothing
    assert not service.sessions
    assert_engine_healthy(sdb, service)


def test_fault_at_execute_errors_one_statement_only(harness):
    sdb, injector, service = harness
    with connect(service) as client:
        client.load("docs", [{"a": 1}])
        injector.plan("service.execute", "raise")
        with pytest.raises(ServiceError) as info:
            client.query("SELECT a FROM docs")
        assert info.value.code == "injected"
        # the *same session* recovers on the next statement
        assert client.query("SELECT a FROM docs").rows == [(1,)]
    assert_engine_healthy(sdb, service)


def test_kill_at_respond_drops_connection_but_not_effects(harness):
    sdb, injector, service = harness
    with connect(service) as setup:
        setup.load("docs", [{"a": 1}])
    # next respond hit dies after the statement ran, before the reply
    injector.plan("service.respond", "kill")
    victim = connect(service)
    with pytest.raises(ConnectionError):
        victim.load("docs", [{"a": 2}])
    victim.close()
    # the statement's effects stand (exactly a network partition after
    # commit); the dead session is reaped
    with connect(service) as control:
        assert sorted(control.query("SELECT a FROM docs").rows) == [(1,), (2,)]
    assert_engine_healthy(sdb, service)


def test_kill_at_respond_mid_transaction_rolls_back(harness):
    """The poisoning scenario: a session dies holding an open transaction."""
    sdb, injector, service = harness
    with connect(service) as setup:
        setup.load("docs", [{"a": 1}])
    victim = connect(service)
    victim.begin()
    # kill the reply to the UPDATE: the statement ran inside the still
    # open transaction, the connection dies before COMMIT ever arrives,
    # and cleanup must roll the transaction (and its undo chain) back
    injector.plan("service.respond", "kill")
    with pytest.raises(ConnectionError):
        victim.query("UPDATE docs SET a = 99 WHERE a = 1")
    victim.close()
    import time

    deadline = time.monotonic() + 10.0
    while sdb.db.txn_manager.active and time.monotonic() < deadline:
        time.sleep(0.02)
    with connect(service) as control:
        assert control.query("SELECT a FROM docs").rows == [(1,)]
    assert_engine_healthy(sdb, service)


def test_fault_during_engine_work_does_not_leak_write_latch(harness):
    """An engine-side fault inside a latched write path must release the
    service write latch on the way out (the with-statement contract)."""
    sdb, injector, service = harness
    with connect(service) as client:
        client.load("docs", [{"a": 1}])
        injector.plan("storage.write_row", "raise", where={"table": "docs"})
        with pytest.raises(ServiceError) as info:
            client.load("docs", [{"a": 2}])
        assert info.value.code == "injected"
        assert not service.write_lock.locked()
        # loader-level atomicity: the failed batch contributed nothing
        assert client.query("SELECT COUNT(*) FROM docs").scalar() == 1
    assert_engine_healthy(sdb, service)


def test_repeated_faults_then_recovery(harness):
    """A burst of failures across all three points, then normal service."""
    sdb, injector, service = harness
    injector.plan("service.accept", "raise", at=1, count=2)
    for _ in range(2):
        with pytest.raises(ServiceError):
            connect(service)
    injector.plan("service.execute", "raise", at=1, count=3)
    with connect(service) as client:
        client.ping()  # ping skips the engine path: no execute fire
        for _ in range(3):
            with pytest.raises(ServiceError):
                client.load("docs", [{"a": 1}])
        client.load("docs", [{"a": 1}])
        assert client.query("SELECT COUNT(*) FROM docs").scalar() == 1
        assert injector.fired("service.accept") == 2
        assert injector.fired("service.execute") == 3
    assert_engine_healthy(sdb, service)
