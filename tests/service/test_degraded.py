"""Degraded (read-only) mode: WAL I/O failures and the recovery path.

An ``OSError`` from a WAL append or fsync must not crash the server or
corrupt the engine: the service flips read-only, rejects writes with a
structured ``degraded`` error, keeps serving reads, and comes back via
``recover`` (the ``\\service recover`` wire op) once the disk behaves.
"""

from __future__ import annotations

import pytest

from repro.core import SinewConfig, SinewDB
from repro.rdbms.errors import DegradedError
from repro.service import ServiceClient, ServiceConfig, ServiceError, SinewService
from repro.testing.faults import FaultInjector


@pytest.fixture
def harness(tmp_path):
    sdb = SinewDB.open(tmp_path / "db", "degraded-test", SinewConfig())
    injector = FaultInjector()
    sdb.attach_faults(injector)
    service = SinewService(sdb, ServiceConfig(port=0))
    service.start_in_thread()
    yield sdb, injector, service
    service.stop_in_thread()
    injector.reset()
    sdb.attach_faults(None)
    sdb.close()


def connect(service, **kwargs) -> ServiceClient:
    return ServiceClient("127.0.0.1", service.port, **kwargs)


def force_degraded(sdb, injector, client, op="append"):
    """Arm one WAL I/O failure and trip it with a write."""
    injector.plan("wal.io_error", exception=OSError, where={"op": op})
    with pytest.raises(ServiceError) as info:
        client.query("INSERT INTO docs (a) VALUES (99)")
    assert sdb.db.wal.degraded
    return info.value


class TestDegradedMode:
    def test_wal_append_failure_flips_read_only(self, harness):
        sdb, injector, service = harness
        with connect(service) as client:
            client.execute("CREATE TABLE docs (a INTEGER)")
            client.execute("INSERT INTO docs (a) VALUES (1)")
            error = force_degraded(sdb, injector, client)
            assert error.code == "degraded"
            assert error.payload["degraded"] is True
            assert error.payload["retryable"] is False
            assert error.payload["reason"]
            assert sdb.db.wal.last_io_error.startswith("append:")
            # the failed write's effects did not land
            assert client.query("SELECT a FROM docs").rows == [(1,)]

    def test_reads_keep_working_while_degraded(self, harness):
        sdb, injector, service = harness
        with connect(service) as client:
            client.execute("CREATE TABLE docs (a INTEGER)")
            client.execute("INSERT INTO docs (a) VALUES (1)")
            force_degraded(sdb, injector, client)
            assert client.query("SELECT a FROM docs").rows == [(1,)]
            # and so do other sessions' reads
            with connect(service) as other:
                assert other.query("SELECT COUNT(*) FROM docs").scalar() == 1

    def test_further_writes_stay_rejected_until_recover(self, harness):
        sdb, injector, service = harness
        with connect(service) as client:
            client.execute("CREATE TABLE docs (a INTEGER)")
            force_degraded(sdb, injector, client)
            for _ in range(2):
                with pytest.raises(ServiceError) as info:
                    client.query("INSERT INTO docs (a) VALUES (2)")
                assert info.value.code == "degraded"

    def test_recover_op_restores_writes(self, harness):
        sdb, injector, service = harness
        with connect(service) as client:
            client.execute("CREATE TABLE docs (a INTEGER)")
            force_degraded(sdb, injector, client)
            injector.reset()  # the disk is healthy again
            report = client.recover()
            assert report["recovered"] is True
            assert report["degraded"] is False
            assert not sdb.db.wal.degraded
            client.query("INSERT INTO docs (a) VALUES (2)")
            assert client.query("SELECT COUNT(*) FROM docs").scalar() == 1
        assert service.counters["recoveries"] == 1

    def test_health_reports_degraded_state(self, harness):
        sdb, injector, service = harness
        with connect(service) as client:
            client.execute("CREATE TABLE docs (a INTEGER)")
            healthy = client.health()
            assert healthy["status"] == "ok"
            assert healthy["degraded"] is False
            force_degraded(sdb, injector, client)
            sick = client.health()
            assert sick["status"] == "degraded"
            assert sick["degraded"] is True
            assert sick["degraded_reason"]

    def test_fsync_failure_also_degrades(self, harness):
        sdb, injector, service = harness
        with connect(service) as client:
            client.execute("CREATE TABLE docs (a INTEGER)")
            error = force_degraded(sdb, injector, client, op="fsync")
            assert error.code == "degraded"
            assert sdb.db.wal.last_io_error.startswith("fsync:")

    def test_degraded_episode_leaves_no_engine_debris(self, harness):
        sdb, injector, service = harness
        with connect(service) as client:
            client.execute("CREATE TABLE docs (a INTEGER)")
            force_degraded(sdb, injector, client)
        assert not sdb.db.txn_manager.active
        assert sdb.catalog.latch_owner is None
        assert not service.write_lock.locked()

    def test_recover_while_healthy_is_a_noop(self, harness):
        _, _, service = harness
        with connect(service) as client:
            report = client.recover()
            assert report["recovered"] is True
            assert report["degraded"] is False


class TestEmbeddedRecover:
    def test_recover_service_embedded(self, tmp_path):
        sdb = SinewDB.open(tmp_path / "db", "embedded", SinewConfig())
        injector = FaultInjector()
        sdb.attach_faults(injector)
        try:
            sdb.query("CREATE TABLE docs (a INTEGER)")
            injector.plan("wal.io_error", exception=OSError, where={"op": "append"})
            with pytest.raises(DegradedError):
                sdb.query("INSERT INTO docs (a) VALUES (1)")
            assert sdb.db.wal.degraded
            injector.reset()
            report = sdb.recover_service()
            assert report["recovered"] is True and not sdb.db.wal.degraded
            sdb.query("INSERT INTO docs (a) VALUES (1)")
            assert sdb.query("SELECT COUNT(*) FROM docs").scalar() == 1
        finally:
            sdb.attach_faults(None)
            sdb.close()

    def test_in_memory_wal_never_degrades(self):
        sdb = SinewDB("volatile")
        try:
            report = sdb.recover_service()
            assert report["recovered"] is True
        finally:
            sdb.close()
