"""End-to-end service tests: real sockets, real sessions, one engine.

Each test boots a :class:`SinewService` on an ephemeral port (hosted on
a background thread) and talks to it with the blocking client -- the
exact stack ``\\connect`` and the load harness use.
"""

from __future__ import annotations

import socket

import pytest

from repro.core import SinewDB
from repro.service import (
    PROTOCOL_VERSION,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    SinewService,
)
from repro.service.protocol import decode_message, encode_message


@pytest.fixture
def sdb():
    instance = SinewDB("server-test")
    yield instance
    instance.close()


@pytest.fixture
def service(sdb):
    with SinewService(sdb, ServiceConfig(port=0, max_sessions=8)) as running:
        yield running


def connect(service) -> ServiceClient:
    return ServiceClient("127.0.0.1", service.port)


class TestBasicProtocol:
    def test_greeting_and_ping(self, service):
        with connect(service) as client:
            assert client.greeting["version"] == PROTOCOL_VERSION
            assert client.session_id >= 1
            assert client.ping()

    def test_load_query_round_trip(self, service):
        with connect(service) as client:
            report = client.load(
                "docs", [{"user": {"id": 1}, "score": 2.5}, {"user": {"id": 2}}]
            )
            assert report["loaded"] == 2
            result = client.query('SELECT "user.id", score FROM docs ORDER BY "user.id"')
            assert result.rows == [(1, 2.5), (2, None)]
            assert result.types == ["integer", "real"]
            assert result.exec_stats  # instrumentation travels the wire

    def test_prepared_statement_flow(self, service):
        with connect(service) as client:
            client.load("docs", [{"a": 1}])
            assert client.prepare("c", "SELECT COUNT(*) FROM docs") == "c"
            assert client.execute_prepared("c").scalar() == 1
            assert client.deallocate("c") is True
            with pytest.raises(ServiceError, match="no prepared statement"):
                client.execute_prepared("c")

    def test_request_ids_echo(self, service):
        with connect(service) as client:
            response = client.request({"op": "ping", "id": 42})
            assert response["id"] == 42

    def test_status_merges_service_and_engine(self, service):
        with connect(service) as client:
            status = client.status()
            assert status["service"]["sessions"] == 1
            assert status["service"]["max_sessions"] == 8
            assert "collections" in status["engine"]
            assert "latch" in status["engine"]

    def test_session_settings(self, service):
        with connect(service) as client:
            settings = client.set_option("explain_analyze", True)
            assert settings["explain_analyze"] is True
            with pytest.raises(ServiceError) as info:
                client.set_option("bogus", 1)
            assert info.value.code == "database"


class TestErrorMapping:
    def test_syntax_error(self, service):
        with connect(service) as client:
            with pytest.raises(ServiceError) as info:
                client.query("SELEC 1")
            assert info.value.code == "syntax"
            # the connection survives the error
            assert client.ping()

    def test_semantic_error(self, service):
        with connect(service) as client:
            client.load("docs", [{"a": 1}])
            with pytest.raises(ServiceError) as info:
                client.query("SELECT a, COUNT(*) FROM docs")
            assert info.value.code == "semantic"
            assert "SNW107" in info.value.message

    def test_unknown_key_is_null_with_warning(self, service):
        # multi-structured contract: a never-seen key is NULL, not an
        # error -- and the analyzer's warning travels the wire
        with connect(service) as client:
            client.load("docs", [{"a": 1}])
            result = client.query("SELECT definitely_not_a_key FROM docs")
            assert result.rows == [(None,)]
            assert any("SNW201" in d for d in result.diagnostics)

    def test_catalog_error(self, service):
        with connect(service) as client:
            with pytest.raises(ServiceError) as info:
                client.query("SELECT a FROM no_such_table")
            assert info.value.code in ("catalog", "semantic", "planning")

    def test_malformed_frame_keeps_connection_alive(self, service):
        with connect(service) as client:
            client._sock.sendall(b"this is not json\n")
            response = decode_message(client._file.readline())
            assert response["ok"] is False
            assert response["error"]["code"] == "protocol"
            assert client.ping()

    def test_unknown_op(self, service):
        with connect(service) as client:
            with pytest.raises(ServiceError) as info:
                client.request({"op": "teleport"})
            assert info.value.code == "protocol"


class TestAdmissionControl:
    def test_session_limit_rejects_with_busy(self, sdb):
        with SinewService(sdb, ServiceConfig(port=0, max_sessions=2)) as service:
            first, second = connect(service), connect(service)
            try:
                with pytest.raises(ServiceError) as info:
                    connect(service)
                assert info.value.code == "busy"
                assert info.value.retryable
            finally:
                first.close()
                second.close()
            # a freed slot admits again (closes need a moment to unregister)
            import time

            for _ in range(100):
                try:
                    third = connect(service)
                    break
                except ServiceError:
                    time.sleep(0.02)
            else:
                pytest.fail("slot never freed after client close")
            third.close()

    def test_query_timeout_returns_structured_error(self, sdb):
        from repro.testing.faults import FaultInjector

        injector = FaultInjector()
        sdb.attach_faults(injector)
        config = ServiceConfig(port=0, query_timeout=0.15)
        with SinewService(sdb, config) as service:
            with connect(service) as client:
                client.load("docs", [{"a": 1}])
                # stall the engine-side write long past the query budget
                injector.plan("storage.write_row", "delay", delay=1.0, count=None)
                with pytest.raises(ServiceError) as info:
                    client.load("docs", [{"a": 2}])
                assert info.value.code == "timeout"
                # the timed-out load keeps running on its worker thread
                # and its rows may land: retrying would double-apply, so
                # write timeouts must not advertise retryable
                assert not info.value.retryable
                assert "may apply" in info.value.payload["message"]
                injector.reset()
                # the session (and server) remain usable afterwards
                assert client.query("SELECT COUNT(*) FROM docs").scalar() >= 1
        sdb.attach_faults(None)

    def test_timeout_retryable_classification(self, sdb):
        # without a rid, only reads are idempotent under a timeout (the
        # engine has no cancellation points, so a timed-out statement's
        # effects may still apply); a rid-stamped write is journaled, so
        # retrying it dedups server-side and is therefore safe
        from repro.service.session import Session

        service = SinewService(sdb, ServiceConfig(port=0))
        try:
            session = Session(1, sdb, service.write_lock)
            sdb.create_collection("docs")

            def retryable(request) -> bool:
                return service._timeout_retryable(session, request)

            assert retryable({"op": "query", "sql": "SELECT a FROM docs"})
            assert not retryable(
                {"op": "query", "sql": "INSERT INTO docs (a) VALUES (1)"}
            )
            assert not retryable({"op": "query", "sql": "COMMIT"})
            assert not retryable({"op": "query", "sql": "not even sql"})
            assert not retryable({"op": "load", "table": "docs", "documents": []})
            session.prepare("r", "SELECT a FROM docs")
            session.prepare("w", "DELETE FROM docs WHERE a = 1")
            assert retryable({"op": "execute", "name": "r"})
            assert not retryable({"op": "execute", "name": "w"})
            assert not retryable({"op": "execute", "name": "missing"})
            # rid-stamped writes flip to retryable (journal dedups them)
            assert retryable(
                {"op": "query", "sql": "INSERT INTO docs (a) VALUES (1)", "rid": 1}
            )
            assert retryable({"op": "query", "sql": "COMMIT", "rid": 2})
            assert retryable({"op": "execute", "name": "w", "rid": 3})
            assert retryable(
                {"op": "load", "table": "docs", "documents": [], "rid": 4}
            )
            # but a rid can't make the unparseable or the unknown safe
            assert not retryable({"op": "query", "sql": "not even sql", "rid": 5})
            assert not retryable({"op": "execute", "name": "missing", "rid": 6})
        finally:
            service._executor.shutdown(wait=False)

    def test_disconnect_mid_transaction_rolls_back(self, service, sdb):
        client = connect(service)
        client.load("docs", [{"a": 1}])
        client.begin()
        client.query("UPDATE docs SET a = 99 WHERE a = 1")
        # vanish without COMMIT or a polite close; the makefile() handle
        # shares the fd, so close both or no FIN ever reaches the server
        client._file.close()
        client._sock.close()
        import time

        for _ in range(100):
            if not sdb.db.txn_manager.active:
                break
            time.sleep(0.02)
        assert not sdb.db.txn_manager.active
        with connect(service) as control:
            assert control.query("SELECT a FROM docs").rows == [(1,)]

    def test_eof_mid_frame_is_tolerated(self, service):
        raw = socket.create_connection(("127.0.0.1", service.port))
        raw.recv(4096)  # greeting
        raw.sendall(b'{"op": "pi')  # half a frame, then gone
        raw.close()
        # server still serves
        with connect(service) as client:
            assert client.ping()


class TestTwoClients:
    def test_transactions_do_not_interleave(self, service):
        with connect(service) as one, connect(service) as two:
            one.load("docs", [{"a": 1}])
            one.begin()
            one.query("UPDATE docs SET a = 50 WHERE a = 1")
            # two's autocommit read: must not observe one's open txn view
            # through shared mutable session state, and two's write must
            # not be absorbed into one's transaction
            two.load("docs", [{"a": 2}])
            one.rollback()
            rows = sorted(two.query("SELECT a FROM docs").rows)
            assert rows == [(1,), (2,)]

    def test_prepared_namespaces_are_disjoint(self, service):
        with connect(service) as one, connect(service) as two:
            one.load("docs", [{"a": 1}])
            one.prepare("mine", "SELECT COUNT(*) FROM docs")
            with pytest.raises(ServiceError):
                two.execute_prepared("mine")
            assert one.execute_prepared("mine").scalar() == 1

    def test_shared_plan_cache_counts_cross_session_hits(self, service):
        with connect(service) as one, connect(service) as two:
            one.load("docs", [{"a": 1}])
            sql = "SELECT a FROM docs"
            one.query(sql)
            before = two.status()["engine"]["plan_cache"]["hits"]
            two.query(sql)  # same normalized key, different session
            after = two.status()["engine"]["plan_cache"]["hits"]
            assert after == before + 1


def test_shell_connect_round_trip(sdb):
    """The ``\\connect`` path: a shell driving a remote server."""
    import io

    from repro.shell import SinewShell

    with SinewService(sdb, ServiceConfig(port=0)) as service:
        out = io.StringIO()
        shell = SinewShell(out=out)
        shell.run_line(f"\\connect 127.0.0.1:{service.port}")
        shell.run_line("\\c remote_docs")
        shell.run_line("\\d")
        shell.run_line("\\daemon")  # refused remotely
        shell.run_line("\\disconnect")
        text = out.getvalue()
        assert "connected to" in text
        assert "remote_docs" in text
        assert "local meta-command" in text
        assert "disconnected" in text
        assert shell.remote is None
        shell.sdb.close()


def test_frame_compactness():
    """Responses are single lines (the framing invariant)."""
    frame = encode_message({"rows": [[1, "two\nlines"]]})
    assert frame.count(b"\n") == 1
