"""The full-stack chaos harness as a test (``repro.testing.chaos``).

One fast seeded run rides in tier-1 as a smoke check; the seed matrix
and the fault-shape variants (kill-heavy, degraded-heavy, txn-heavy)
are ``slow`` -- run them with ``pytest -m slow``.

Every run asserts the harness's own invariants: exactly-once effects
for every acked write, all-or-nothing transaction blocks, serial-replay
equality, zero leaked sessions/transactions/latches, and convergence to
a settled layout that passes ``check()``.
"""

from __future__ import annotations

import pytest

from repro.testing.chaos import ChaosConfig, ChaosReport, run_chaos


def assert_clean(report: ChaosReport):
    assert report.ok, report.failures
    assert report.failures == []
    assert report.leaked_sessions == 0
    assert report.leaked_txns == 0
    assert report.check_findings == 0
    assert report.ops > 0
    # the report's ledger is internally consistent
    assert report.acked + report.failed + report.unknown <= report.ops * 4


def test_chaos_smoke():
    # small but real: 16 concurrent retrying clients, random faults,
    # client kills, one degraded episode -- the tier-1 canary
    report = run_chaos(
        ChaosConfig(
            seed=11,
            clients=16,
            ops_per_client=6,
            fault_rounds=4,
            degraded_episodes=1,
        )
    )
    assert_clean(report)
    # faults were actually armed (firing depends on timing, so only the
    # arming is guaranteed)
    assert report.faults_armed > 0


def test_chaos_report_serializes():
    report = run_chaos(
        ChaosConfig(seed=1, clients=4, ops_per_client=3, fault_rounds=1,
                    degraded_episodes=0)
    )
    assert_clean(report)
    import json

    payload = json.loads(report.to_json())
    assert payload["seed"] == 1
    assert "events" not in payload  # the JSONL log carries those
    assert payload["ok"] is True


def test_chaos_log_written(tmp_path):
    log = tmp_path / "chaos.jsonl"
    report = run_chaos(
        ChaosConfig(seed=2, clients=4, ops_per_client=3, fault_rounds=1,
                    degraded_episodes=0, log_path=str(log))
    )
    assert_clean(report)
    lines = log.read_text().strip().splitlines()
    assert lines  # one JSON object per event


@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 3, 7, 13, 42])
def test_chaos_seed_matrix(seed):
    report = run_chaos(
        ChaosConfig(seed=seed, clients=16, ops_per_client=12,
                    fault_rounds=10, degraded_episodes=1)
    )
    assert_clean(report)


@pytest.mark.slow
def test_chaos_kill_heavy():
    # clients die mid-transaction constantly: every abandoned block must
    # vanish without a trace
    report = run_chaos(
        ChaosConfig(seed=5, clients=16, ops_per_client=12,
                    txn_probability=0.6, kill_probability=0.5,
                    fault_rounds=6, degraded_episodes=0)
    )
    assert_clean(report)
    assert report.client_kills > 0


@pytest.mark.slow
def test_chaos_degraded_heavy():
    # repeated WAL I/O outages with recovery between them
    report = run_chaos(
        ChaosConfig(seed=6, clients=12, ops_per_client=12,
                    fault_rounds=4, degraded_episodes=3)
    )
    assert_clean(report)
    assert report.degraded_episodes >= 1


@pytest.mark.slow
def test_chaos_fault_storm():
    # maximal random fault pressure on the service/daemon/checkpoint
    # points; the engine and the ledger must both survive
    report = run_chaos(
        ChaosConfig(seed=8, clients=16, ops_per_client=16,
                    fault_rounds=25, degraded_episodes=1)
    )
    assert_clean(report)
    # arming stops when the clients finish, so only a lower bound holds
    assert report.faults_armed >= 10
