"""Exactly-once write retries: journal semantics and the wire protocol.

Unit tests pin the :class:`RetryJournal` state machine (watermarks,
transaction boundaries, LRU eviction) and :class:`RetryPolicy` backoff;
the wire tests drive a live service with rid-stamped requests -- replays,
resume-after-reconnect, and the client-side rule that a mid-transaction
connection loss must surface instead of silently re-executing the
statement as autocommit.
"""

from __future__ import annotations

import random

import pytest

from repro.core import SinewDB
from repro.service import (
    JournalRegistry,
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    SinewService,
)
from repro.service.client import sql_is_write
from repro.service.retry import RetryJournal
from repro.testing.faults import FaultInjector


# ----------------------------------------------------------------------
# journal unit tests
# ----------------------------------------------------------------------


class TestRetryJournal:
    def test_create_then_replay(self):
        journal = RetryJournal()
        entry, created = journal.begin(1)
        assert created
        journal.finish(1, {"ok": True, "n": 7})
        again, created = journal.begin(1)
        assert not created and again is entry
        response = journal.replayed(again)
        assert response == {"ok": True, "n": 7, "replayed": True}
        assert journal.stats()["replays"] == 1

    def test_acked_rid_is_a_protocol_violation(self):
        journal = RetryJournal()
        entry, _ = journal.begin(3)
        journal.finish(3, {"ok": True})
        journal.ack(3)
        assert journal.begin(3) == (None, False)
        assert journal.begin(2) == (None, False)
        # the next fresh rid is business as usual
        entry, created = journal.begin(4)
        assert created

    def test_ack_drops_finished_entries_only(self):
        journal = RetryJournal()
        journal.begin(1)
        journal.finish(1, {"ok": True})
        pending, _ = journal.begin(2)  # still running on a worker
        journal.ack(2)
        assert journal.stats()["entries"] == 1  # rid 2 survives until done
        assert not pending.done.is_set()

    def test_forget_lets_a_retry_re_execute(self):
        journal = RetryJournal()
        entry, _ = journal.begin(1)
        journal.forget(1)
        assert entry.failed and entry.done.is_set()
        _, created = journal.begin(1)
        assert created  # fresh attempt, not a replay

    def test_rollback_drops_open_txn_entries(self):
        journal = RetryJournal()
        journal.begin(1)
        journal.finish(1, {"ok": True}, in_txn=True)
        journal.begin(2)
        journal.finish(2, {"ok": True}, in_txn=False)
        assert journal.rollback_open() == 1
        _, created = journal.begin(1)
        assert created  # effects were undone: re-execute
        entry, created = journal.begin(2)
        assert not created  # autocommit outcome still holds

    def test_commit_clears_txn_flags(self):
        journal = RetryJournal()
        journal.begin(1)
        journal.finish(1, {"ok": True}, in_txn=True)
        journal.begin(2)
        journal.finish(2, {"ok": True}, in_txn=True, kind="commit")
        assert journal.rollback_open() == 0  # durable now; nothing to drop

    def test_journaled_rollback_drops_others_but_keeps_itself(self):
        journal = RetryJournal()
        journal.begin(1)
        journal.finish(1, {"ok": True}, in_txn=True)
        journal.begin(2)
        journal.finish(2, {"ok": True}, in_txn=True, kind="rollback")
        _, created_write = journal.begin(1)
        entry, created_rb = journal.begin(2)
        assert created_write  # voided by the rollback
        assert not created_rb  # the ROLLBACK outcome itself replays

    def test_lru_eviction_spares_pending_entries(self):
        journal = RetryJournal(capacity=2)
        pending, _ = journal.begin(1)  # never finished
        journal.begin(2)
        journal.finish(2, {"ok": True})
        journal.begin(3)
        journal.finish(3, {"ok": True})
        stats = journal.stats()
        assert stats["entries"] == 2 and stats["evicted"] == 1
        assert not pending.done.is_set()  # rid 2 was the victim, not rid 1
        _, created = journal.begin(1)
        assert not created


class TestJournalRegistry:
    def test_park_and_claim(self):
        registry = JournalRegistry()
        journal = RetryJournal()
        registry.park("tok-a", journal)
        assert registry.claim("tok-a") is journal
        assert registry.claim("tok-a") is None  # single-use
        assert registry.stats()["resumes"] == 1

    def test_capacity_drops_oldest(self):
        registry = JournalRegistry(capacity=2)
        for index in range(3):
            registry.park(f"tok-{index}", RetryJournal())
        assert registry.claim("tok-0") is None
        assert registry.claim("tok-2") is not None
        assert registry.stats()["dropped"] == 1


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_max=0.5, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.backoff(attempt, rng) for attempt in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_max=1.0, jitter=0.5)
        rng = random.Random(7)
        for attempt in range(4):
            base = min(0.1 * 2**attempt, 1.0)
            delay = policy.backoff(attempt, rng)
            assert 0.5 * base <= delay <= 1.5 * base


def test_sql_write_classification():
    assert sql_is_write("INSERT INTO t (a) VALUES (1)")
    assert sql_is_write("  begin")
    assert sql_is_write("COMMIT")
    assert not sql_is_write("SELECT 1 FROM t")
    assert not sql_is_write("")


# ----------------------------------------------------------------------
# wire tests: a live service, rid-stamped requests
# ----------------------------------------------------------------------


@pytest.fixture
def harness():
    sdb = SinewDB("retry-test")
    injector = FaultInjector()
    sdb.attach_faults(injector)
    service = SinewService(sdb, ServiceConfig(port=0))
    service.start_in_thread()
    yield sdb, injector, service
    service.stop_in_thread()
    sdb.attach_faults(None)
    sdb.close()


def connect(service, **kwargs) -> ServiceClient:
    return ServiceClient("127.0.0.1", service.port, **kwargs)


class TestWireIdempotency:
    def test_duplicate_rid_replays_not_re_executes(self, harness):
        sdb, _, service = harness
        with connect(service) as client:
            client.execute("CREATE TABLE docs (a INTEGER)")
            client.execute("INSERT INTO docs (a) VALUES (1)")
            message = {
                "op": "query",
                "sql": "INSERT INTO docs (a) VALUES (2)",
                "rid": 1,
            }
            first = client.request(dict(message))
            # simulate the response never arriving: the retry must not
            # advance the ack watermark past the in-doubt rid
            client._ack = 0
            second = client.request(dict(message))
            assert second.get("replayed") is True
            assert second["result"] == first["result"]
            assert client.query("SELECT COUNT(*) FROM docs").scalar() == 2
        assert service.counters["retries_deduped"] == 1

    def test_rid_below_ack_watermark_is_rejected(self, harness):
        _, _, service = harness
        with connect(service) as client:
            client.request(
                {"op": "query", "sql": "CREATE TABLE docs (a INTEGER)", "rid": 1}
            )
            client.request(
                {"op": "query", "sql": "INSERT INTO docs (a) VALUES (1)", "rid": 2}
            )
            # the ack piggybacked on rid 2 covered rid 1; re-sending it is
            # not a retry, it is a bug in the client
            with pytest.raises(ServiceError) as info:
                client.request(
                    {"op": "query", "sql": "CREATE TABLE docs (a INTEGER)", "rid": 1}
                )
            assert info.value.code == "protocol"
            assert "watermark" in info.value.payload["message"]

    def test_rollback_voids_journaled_txn_writes(self, harness):
        _, _, service = harness
        with connect(service) as client:
            client.execute("CREATE TABLE docs (a INTEGER)")
            client.execute("INSERT INTO docs (a) VALUES (1)")
            client.begin()
            insert = {
                "op": "query",
                "sql": "INSERT INTO docs (a) VALUES (9)",
                "rid": 10,
            }
            client.request(dict(insert))
            client._ack = 0  # the insert's response counts as lost
            client.rollback()
            # the insert's effects were undone: the retry re-executes (as
            # autocommit now) instead of replaying a success that no
            # longer holds
            replay = client.request(dict(insert))
            assert "replayed" not in replay
            rows = sorted(client.query("SELECT a FROM docs").rows)
            assert rows == [(1,), (9,)]

    def test_resume_reclaims_journal_across_reconnect(self, harness):
        _, _, service = harness
        first = connect(service)
        first.execute("CREATE TABLE docs (a INTEGER)")
        first.execute("INSERT INTO docs (a) VALUES (1)")
        token = first.resume_token
        first.request(
            {"op": "query", "sql": "INSERT INTO docs (a) VALUES (2)", "rid": 5}
        )
        first.kill()  # abrupt death; journal parks under the token

        second = connect(service)
        try:
            resumed = second.request({"op": "resume", "token": token})
            assert resumed["resumed"] is True
            # the in-doubt rid replays on the new connection
            replay = second.request(
                {"op": "query", "sql": "INSERT INTO docs (a) VALUES (2)", "rid": 5}
            )
            assert replay.get("replayed") is True
            assert second.query("SELECT COUNT(*) FROM docs").scalar() == 2
        finally:
            second.close()
        assert service.journals.stats()["resumes"] == 1

    def test_resume_with_unknown_token_says_so(self, harness):
        _, _, service = harness
        with connect(service) as client:
            response = client.request({"op": "resume", "token": "never-issued"})
            assert response["resumed"] is False

    def test_retrying_client_survives_respond_kill(self, harness):
        sdb, injector, service = harness
        with connect(service) as setup:
            setup.execute("CREATE TABLE docs (a INTEGER)")
            setup.execute("INSERT INTO docs (a) VALUES (1)")
        client = connect(
            service, retry=RetryPolicy(backoff_base=0.01, backoff_max=0.05), seed=1
        )
        try:
            # the response for the INSERT is dropped on the floor; the
            # client reconnects, resumes, retries the rid, and the journal
            # replays the recorded outcome -- exactly one row lands
            injector.plan("service.respond", "kill")
            client.query("INSERT INTO docs (a) VALUES (2)")
            assert client.reconnects == 1
            assert client.replays == 1
            assert client.query("SELECT COUNT(*) FROM docs").scalar() == 2
        finally:
            injector.reset()
            client.close()

    def test_lost_commit_ack_is_replayed_not_rerun(self, harness):
        _, injector, service = harness
        client = connect(
            service, retry=RetryPolicy(backoff_base=0.01, backoff_max=0.05), seed=2
        )
        try:
            client.execute("CREATE TABLE docs (a INTEGER)")
            client.execute("INSERT INTO docs (a) VALUES (1)")
            client.begin()
            client.query("INSERT INTO docs (a) VALUES (2)")
            injector.plan("service.respond", "kill")
            client.commit()  # ack lost; retry must not commit twice
            assert client.replays >= 1
            rows = sorted(client.query("SELECT a FROM docs").rows)
            assert rows == [(1,), (2,)]
        finally:
            injector.reset()
            client.close()

    def test_mid_txn_connection_loss_raises_instead_of_escaping(self, harness):
        sdb, injector, service = harness
        client = connect(
            service, retry=RetryPolicy(backoff_base=0.01, backoff_max=0.05), seed=3
        )
        try:
            client.execute("CREATE TABLE docs (a INTEGER)")
            client.execute("INSERT INTO docs (a) VALUES (1)")
            client.begin()
            client.query("INSERT INTO docs (a) VALUES (2)")
            # the connection dies before the next statement's response:
            # the server rolled the transaction back at disconnect, so
            # transparently retrying the statement would re-execute it
            # OUTSIDE the transaction -- the client must raise instead
            injector.plan("service.respond", "kill")
            with pytest.raises((ServiceError, ConnectionError, OSError)):
                client.query("INSERT INTO docs (a) VALUES (3)")
            assert not client.in_transaction  # context is gone, visibly
            # neither txn write escaped the abort
            assert client.query("SELECT a FROM docs").rows == [(1,)]
        finally:
            injector.reset()
            client.close()

    def test_plain_clients_still_interoperate(self, harness):
        # a version-1 client that never stamps rids keeps the PR 7
        # contract: write timeouts are not retryable, reads round-trip
        _, _, service = harness
        with connect(service) as client:
            client.load("docs", [{"a": 1}])
            assert client.query("SELECT a FROM docs").rows == [(1,)]
            assert "resume_token" in client.greeting
