"""Session-scoped engine state: the refactor away from one global txn.

Before the service layer, ``Database`` kept a single ``_session_txn``:
fine embedded, fatal multi-client (one connection's BEGIN would hijack
another's autocommit).  These tests pin the new contract at both levels:
``DbSession`` handles in the engine, and ``repro.service.session.Session``
objects above them.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import SinewDB
from repro.latching import TrackedLock
from repro.rdbms.database import Database
from repro.rdbms.errors import DatabaseError, TransactionError
from repro.rdbms.types import SqlType
from repro.service.session import PreparedStatement, Session, is_write_statement
from repro.rdbms.sql.parser import parse


@pytest.fixture
def db():
    database = Database("session-test")
    database.create_table("t", [("a", SqlType.INTEGER)])
    yield database
    database.close(checkpoint=False)


@pytest.fixture
def sdb():
    instance = SinewDB("svc-session-test")
    instance.create_collection("docs")
    yield instance
    instance.close()


def make_session(sdb, session_id=1, lock=None):
    return Session(session_id, sdb, lock or TrackedLock("service.write"))


class TestDbSessions:
    def test_transactions_are_isolated_between_sessions(self, db):
        s1, s2 = db.create_session("s1"), db.create_session("s2")
        db.execute("BEGIN", session=s1)
        db.execute("INSERT INTO t (a) VALUES (1)", session=s1)
        # s2 runs autocommit while s1's txn is open -- not hijacked into it
        db.execute("INSERT INTO t (a) VALUES (100)", session=s2)
        assert s1.in_transaction and not s2.in_transaction
        db.execute("ROLLBACK", session=s1)
        rows = db.execute("SELECT a FROM t").rows
        # s2's autocommit write survived s1's rollback
        assert rows == [(100,)]

    def test_concurrent_open_transactions_commit_independently(self, db):
        s1, s2 = db.create_session("s1"), db.create_session("s2")
        db.execute("BEGIN", session=s1)
        db.execute("BEGIN", session=s2)
        db.execute("INSERT INTO t (a) VALUES (1)", session=s1)
        db.execute("INSERT INTO t (a) VALUES (2)", session=s2)
        db.execute("COMMIT", session=s1)
        db.execute("ROLLBACK", session=s2)
        assert db.execute("SELECT a FROM t").rows == [(1,)]

    def test_default_session_still_works(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO t (a) VALUES (5)")
        db.execute("COMMIT")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_commit_without_begin_raises_per_session(self, db):
        session = db.create_session("s")
        with pytest.raises(TransactionError):
            db.execute("COMMIT", session=session)

    def test_abort_session_rolls_back(self, db):
        session = db.create_session("doomed")
        db.execute("BEGIN", session=session)
        db.execute("INSERT INTO t (a) VALUES (9)", session=session)
        assert db.abort_session(session) is True
        assert db.abort_session(session) is False  # idempotent
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_open_session_txn_blocks_checkpoint_path(self, db):
        session = db.create_session("s")
        db.execute("BEGIN", session=session)
        assert db.txn_manager.active  # the checkpointer's skip predicate
        db.execute("ROLLBACK", session=session)
        assert not db.txn_manager.active


class TestServiceSession:
    def test_statement_classification(self):
        assert is_write_statement(parse("INSERT INTO t (a) VALUES (1)"))
        assert is_write_statement(parse("DELETE FROM t WHERE a = 1"))
        assert not is_write_statement(parse("SELECT 1"))
        # transaction control holds the write latch too: ROLLBACK applies
        # per-row undo against shared heap tables, COMMIT flushes the WAL,
        # and BEGIN must not slip into the checkpointer's check-then-
        # snapshot window
        assert is_write_statement(parse("BEGIN"))
        assert is_write_statement(parse("COMMIT"))
        assert is_write_statement(parse("ROLLBACK"))

    def test_txn_control_and_close_serialize_on_write_latch(self, sdb):
        # regression: BEGIN/COMMIT/ROLLBACK and the disconnect-time abort
        # used to bypass the write latch, so a rollback's undo callbacks
        # could interleave with another session's DML on the shared heap
        lock = TrackedLock("service.write")
        session = make_session(sdb, 1, lock)
        session.load_documents("docs", [{"a": 1}])

        def blocks_until_released(target) -> None:
            thread = threading.Thread(target=target, daemon=True)
            with lock:
                thread.start()
                thread.join(0.2)
                assert thread.is_alive()  # parked on the write latch
            thread.join(5.0)
            assert not thread.is_alive()

        blocks_until_released(lambda: session.execute_sql("BEGIN"))
        session.execute_sql("UPDATE docs SET a = 2 WHERE a = 1")
        blocks_until_released(lambda: session.execute_sql("ROLLBACK"))
        session.execute_sql("BEGIN")
        blocks_until_released(session.close)  # abort-on-close latches too
        assert session.sdb.db.txn_manager.active == {}

    def test_execute_and_load(self, sdb):
        session = make_session(sdb)
        report = session.load_documents("docs", [{"a": 1}, {"a": 2}])
        assert report["loaded"] == 2
        result = session.execute_sql("SELECT a FROM docs WHERE a > 1")
        assert result.rows == [(2,)]
        assert session.statements == 1

    def test_load_creates_missing_collection(self, sdb):
        session = make_session(sdb)
        session.load_documents("fresh", [{"x": 1}])
        assert "fresh" in sdb.collections()

    def test_prepared_statements_are_per_session(self, sdb):
        lock = TrackedLock("service.write")
        s1, s2 = make_session(sdb, 1, lock), make_session(sdb, 2, lock)
        s1.load_documents("docs", [{"a": 1}])
        s1.prepare("q", "SELECT COUNT(*) FROM docs")
        assert s1.execute_prepared("q").scalar() == 1
        with pytest.raises(DatabaseError, match="no prepared statement"):
            s2.execute_prepared("q")
        assert s1.deallocate("q") is True
        assert s1.deallocate("q") is False

    def test_prepare_parses_eagerly(self, sdb):
        session = make_session(sdb)
        with pytest.raises(DatabaseError):
            session.prepare("bad", "SELEC 1")
        with pytest.raises(DatabaseError):
            session.prepare("", "SELECT 1")
        assert session.prepared == {}

    def test_prepared_kind_and_counters(self, sdb):
        session = make_session(sdb)
        session.load_documents("docs", [{"a": 1}])
        prepared = session.prepare("q", "SELECT a FROM docs")
        assert isinstance(prepared, PreparedStatement)
        assert prepared.kind == "select"
        session.execute_prepared("q")
        session.execute_prepared("q")
        assert session.prepared["q"].executions == 2

    def test_settings_validation(self, sdb):
        session = make_session(sdb)
        session.set_option("use_plan_cache", False)
        assert session.settings["use_plan_cache"] is False
        with pytest.raises(DatabaseError, match="unknown session setting"):
            session.set_option("nope", 1)
        with pytest.raises(DatabaseError, match="expects bool"):
            session.set_option("explain_analyze", "yes")

    def test_transactions_are_isolated_between_service_sessions(self, sdb):
        lock = TrackedLock("service.write")
        s1, s2 = make_session(sdb, 1, lock), make_session(sdb, 2, lock)
        s1.load_documents("docs", [{"a": 1}])
        s1.execute_sql("BEGIN")
        s1.execute_sql("UPDATE docs SET a = 99 WHERE a = 1")
        assert not s2.db_session.in_transaction
        s1.execute_sql("ROLLBACK")
        assert s2.execute_sql("SELECT a FROM docs").rows == [(1,)]

    def test_close_rolls_back_open_transaction(self, sdb):
        session = make_session(sdb)
        session.load_documents("docs", [{"a": 1}])
        session.execute_sql("BEGIN")
        session.execute_sql("UPDATE docs SET a = 2 WHERE a = 1")
        summary = session.close()
        assert summary["rolled_back"] is True
        assert session.close()["rolled_back"] is False  # idempotent
        control = make_session(sdb, 99)
        assert control.execute_sql("SELECT a FROM docs").rows == [(1,)]

    def test_explain_analyze_setting_attaches_plan(self, sdb):
        session = make_session(sdb)
        session.load_documents("docs", [{"a": 1}])
        session.set_option("explain_analyze", True)
        result = session.execute_sql("SELECT a FROM docs")
        assert result.plan_text
