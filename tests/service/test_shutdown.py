"""Shutdown semantics: drain, abandoned transactions, latch hygiene.

``stop()`` now drains: the listener closes, in-flight statements get
``drain_timeout`` seconds to finish, and only then are sessions torn
down.  These tests pin the contract from both sides -- a statement
inside the grace period completes and is answered; one past the deadline
is abandoned (its transaction rolls back); and no shutdown path ever
leaves the shared write latch held or a transaction live.

To hold a statement genuinely in flight the tests grab the service
write latch from the test thread: the client's write then blocks on a
worker thread exactly as a long engine call would.
"""

from __future__ import annotations

import threading
import time
from contextlib import ExitStack

import pytest

from repro.core import SinewDB
from repro.service import ServiceClient, ServiceConfig, ServiceError, SinewService


def connect(service, **kwargs) -> ServiceClient:
    return ServiceClient("127.0.0.1", service.port, **kwargs)


def build(sdb, **config):
    service = SinewService(sdb, ServiceConfig(port=0, **config))
    service.start_in_thread()
    return service


def wait_until(predicate, timeout=10.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def sdb():
    instance = SinewDB("shutdown-test")
    yield instance
    instance.close()


def assert_clean_engine(sdb, service):
    assert not sdb.db.txn_manager.active
    assert sdb.catalog.latch_owner is None
    assert not service.write_lock.locked()


def swallow(fn, *args):
    try:
        fn(*args)
    except Exception:
        pass


class TestDrain:
    def test_in_flight_statement_completes_inside_grace(self, sdb):
        service = build(sdb, drain_timeout=5.0)
        try:
            with connect(service) as client:
                client.execute("CREATE TABLE docs (a INTEGER)")
                outcome = {}

                def write():
                    try:
                        client.query("INSERT INTO docs (a) VALUES (1)")
                        outcome["ok"] = True
                    except Exception as error:  # pragma: no cover
                        outcome["error"] = error

                with ExitStack() as holding:
                    holding.enter_context(service.write_lock)
                    worker = threading.Thread(target=write)
                    worker.start()
                    # the INSERT is blocked on a worker thread behind the
                    # latch we hold: genuinely in flight
                    assert wait_until(lambda: service._inflight == 1)
                    service.stop()
                    assert wait_until(lambda: service._draining)
                    # release inside the grace period
                worker.join(10.0)
                assert outcome.get("ok"), outcome.get("error")
        finally:
            service.stop_in_thread()
        assert service.counters["drained_clean"] == 1
        assert service.counters["drain_timeouts"] == 0
        # the write that finished inside the grace period is durable
        assert sdb.query("SELECT COUNT(*) FROM docs").scalar() == 1
        assert_clean_engine(sdb, service)

    def test_statement_past_deadline_is_abandoned_and_rolled_back(self, sdb):
        service = build(sdb, drain_timeout=0.2)
        client = connect(service)
        try:
            client.execute("CREATE TABLE docs (a INTEGER)")
            client.begin()
            client.query("INSERT INTO docs (a) VALUES (1)")
            with ExitStack() as holding:
                holding.enter_context(service.write_lock)
                worker = threading.Thread(
                    target=swallow,
                    args=(client.query, "INSERT INTO docs (a) VALUES (2)"),
                )
                worker.start()
                assert wait_until(lambda: service._inflight == 1)
                service.stop()
                # the statement outlives the 0.2 s grace period
                assert wait_until(
                    lambda: service.counters["drain_timeouts"] == 1
                )
                # only now does the engine free up
            worker.join(10.0)
            service.stop_in_thread()
        finally:
            client.kill()
        # the open transaction died with the session: nothing landed,
        # including the abandoned statement that finished post-teardown
        assert sdb.query("SELECT COUNT(*) FROM docs").scalar() == 0
        assert_clean_engine(sdb, service)

    def test_draining_server_rejects_new_statements(self, sdb):
        service = build(sdb, drain_timeout=5.0)
        hot = connect(service)
        idle = connect(service)
        try:
            hot.execute("CREATE TABLE docs (a INTEGER)")
            with ExitStack() as holding:
                holding.enter_context(service.write_lock)
                worker = threading.Thread(
                    target=swallow,
                    args=(hot.query, "INSERT INTO docs (a) VALUES (1)"),
                )
                worker.start()
                assert wait_until(lambda: service._inflight == 1)
                service.stop()  # the blocked INSERT keeps the drain open
                assert wait_until(lambda: service._draining)
                with pytest.raises(ServiceError) as info:
                    idle.query("SELECT COUNT(*) FROM docs")
                assert info.value.code == "unavailable"
                assert info.value.payload["draining"] is True
                assert not info.value.retryable
                # ping/health stay answerable for monitoring mid-drain
                assert idle.ping()
                assert idle.health()["status"] == "draining"
            worker.join(10.0)
            service.stop_in_thread()
        finally:
            hot.kill()
            idle.kill()
        assert service.counters["drain_rejected"] >= 1
        assert service.counters["drained_clean"] == 1
        assert_clean_engine(sdb, service)


class TestShutdownHygiene:
    def test_disconnect_mid_begin_aborts_the_transaction(self, sdb):
        service = build(sdb)
        try:
            client = connect(service)
            client.execute("CREATE TABLE docs (a INTEGER)")
            client.begin()
            client.query("INSERT INTO docs (a) VALUES (1)")
            client.kill()  # vanish mid-transaction
            assert wait_until(lambda: not sdb.db.txn_manager.active)
            with connect(service) as probe:
                assert probe.query("SELECT COUNT(*) FROM docs").scalar() == 0
        finally:
            service.stop_in_thread()
        assert_clean_engine(sdb, service)

    def test_stop_with_open_transactions_rolls_them_back(self, sdb):
        service = build(sdb, drain_timeout=0.5)
        client = connect(service)
        client.execute("CREATE TABLE docs (a INTEGER)")
        client.begin()
        client.query("INSERT INTO docs (a) VALUES (1)")
        service.stop_in_thread()  # BEGIN still open on the session
        client.kill()
        assert sdb.query("SELECT COUNT(*) FROM docs").scalar() == 0
        assert_clean_engine(sdb, service)

    def test_repeated_stop_cycles_never_leak_the_write_latch(self, sdb):
        # satellite 3's core claim: stop_in_thread with writes in flight
        # must never leave service.write (the engine write latch) held
        sdb.query("CREATE TABLE docs (a INTEGER)")
        for cycle in range(3):
            service = build(sdb, drain_timeout=0.5)
            clients = [connect(service) for _ in range(4)]
            stop_flag = threading.Event()

            def hammer(client):
                while not stop_flag.is_set():
                    try:
                        client.query(
                            f"INSERT INTO docs (a) VALUES ({cycle})"
                        )
                    except Exception:
                        return

            threads = [
                threading.Thread(target=hammer, args=(client,))
                for client in clients
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.15)
            service.stop_in_thread()
            stop_flag.set()
            for thread in threads:
                thread.join(10.0)
            for client in clients:
                client.kill()
            assert not service.write_lock.locked()
            assert not sdb.db.txn_manager.active
        # the engine is still fully serviceable afterwards
        sdb.query("INSERT INTO docs (a) VALUES (99)")
        assert sdb.query("SELECT COUNT(*) FROM docs").scalar() >= 1

    def test_stop_idle_server_counts_clean_drain(self, sdb):
        service = build(sdb)
        with connect(service) as client:
            client.ping()
        service.stop_in_thread()
        assert service.counters["drained_clean"] == 1
        assert service.counters["drain_timeouts"] == 0
