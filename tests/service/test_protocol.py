"""Wire-protocol round trips: type fidelity from engine to client.

The service's fidelity contract is that a remote caller sees exactly
what an embedded caller sees: INTEGER vs REAL preserved, BYTEA as
``bytes``, nan/inf intact, nested documents unchanged, and ``"$"``-keyed
dicts (the tag escape hatch) indistinguishable from any other dict.  The
hypothesis test generates arbitrary nested multi-typed values and pushes
them through encode -> JSON -> decode.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.service.protocol import (
    ProtocolError,
    RemoteResult,
    decode_message,
    decode_result,
    decode_row,
    decode_value,
    encode_message,
    encode_result,
    encode_row,
    encode_value,
    infer_column_types,
)


def round_trip(value):
    """encode -> actual JSON serialization -> decode (the full wire path)."""
    return decode_value(json.loads(json.dumps(encode_value(value))))


class TestValueRoundTrip:
    def test_scalars_pass_through(self):
        for value in (None, True, False, 0, -7, 12345678901234567890, "", "héllo"):
            result = round_trip(value)
            assert result == value
            assert type(result) is type(value)

    def test_integer_vs_real_distinction_survives(self):
        assert round_trip(1) == 1 and isinstance(round_trip(1), int)
        assert round_trip(1.0) == 1.0 and isinstance(round_trip(1.0), float)
        assert not isinstance(round_trip(1), float)

    def test_non_finite_floats(self):
        assert math.isnan(round_trip(math.nan))
        assert round_trip(math.inf) == math.inf
        assert round_trip(-math.inf) == -math.inf

    def test_bytes(self):
        for payload in (b"", b"\x00\x01\xff", bytes(range(256))):
            result = round_trip(payload)
            assert result == payload
            assert isinstance(result, bytes)

    def test_nested_structures(self):
        value = {
            "user": {"id": 7, "tags": ["a", 1, 2.5, None, {"deep": b"\x01"}]},
            "scores": [math.inf, -0.0],
        }
        assert round_trip(value) == value

    def test_dollar_key_dicts_are_escaped(self):
        # a document that *looks like* a tag must not be decoded as one
        for value in (
            {"$": "f"},
            {"$": "b", "v": "not base64!"},
            {"$": "d", "v": {"x": 1}},
            {"$": 1, "other": [b"\x02"]},
        ):
            assert round_trip(value) == value

    def test_unencodable_type_raises(self):
        with pytest.raises(ProtocolError):
            encode_value(object())

    def test_bad_tags_raise(self):
        with pytest.raises(ProtocolError):
            decode_value({"$": "f", "v": "fast"})
        with pytest.raises(ProtocolError):
            decode_value({"$": "zzz"})
        with pytest.raises(ProtocolError):
            decode_value({"$": "d", "v": [1]})

    def test_rows_decode_to_tuples(self):
        row = [1, "x", [1, 2], None]
        decoded = decode_row(json.loads(json.dumps(encode_row(row))))
        assert decoded == (1, "x", [1, 2], None)
        assert isinstance(decoded, tuple)


class TestMessageFraming:
    def test_round_trip(self):
        frame = encode_message({"op": "query", "sql": "SELECT 1"})
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1  # compact JSON never embeds newlines
        assert decode_message(frame) == {"op": "query", "sql": "SELECT 1"}

    def test_malformed_frames_raise(self):
        for bad in (b"", b"   \n", b"not json\n", b"[1, 2]\n", b'"str"\n'):
            with pytest.raises(ProtocolError):
                decode_message(bad)


class TestResults:
    def test_infer_column_types(self):
        rows = [(1, "a", None, 1), (2, None, None, 2.5)]
        assert infer_column_types(["i", "t", "n", "m"], rows) == [
            "integer",
            "text",
            None,
            "mixed",
        ]

    def test_bool_is_not_integer(self):
        assert infer_column_types(["b"], [(True,)]) == ["boolean"]

    def test_result_round_trip(self):
        source = RemoteResult(
            columns=["a", "b"],
            rows=[(1, b"\x00"), (2.5, None)],
            rowcount=2,
            types=[],
            exec_stats={"rows_scanned": 2},
            plan_text="Scan",
            diagnostics=("SNW201 something",),
        )
        payload = json.loads(json.dumps(encode_result(source)))
        result = decode_result(payload)
        assert result.rows == [(1, b"\x00"), (2.5, None)]
        assert result.types == ["mixed", "bytea"]
        assert result.rowcount == 2
        assert result.exec_stats == {"rows_scanned": 2}
        assert result.plan_text == "Scan"
        assert result.diagnostics == ("SNW201 something",)
        assert result.scalar() == 1
        assert result.column("b") == [b"\x00", None]
        assert len(result) == 2 and list(result) == result.rows


# ----------------------------------------------------------------------
# property-based fidelity (skipped where hypothesis is not installed,
# e.g. the tier-1 CI lane; the stress lane runs it with the ci profile)
# ----------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False),  # nan breaks == comparison; tested directly above
    st.text(max_size=40),
    st.binary(max_size=40),
)

wire_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
        # adversarial: dicts whose keys collide with the tag escape
        st.fixed_dictionaries({"$": children}),
    ),
    max_leaves=25,
)


@given(wire_values)
def test_arbitrary_values_round_trip_with_type_fidelity(value):
    result = round_trip(value)
    assert result == value
    assert type(result) is type(value)


@given(st.lists(st.lists(scalars, min_size=3, max_size=3), max_size=6))
def test_arbitrary_rows_round_trip(rows):
    tuples = [tuple(row) for row in rows]
    source = RemoteResult(
        columns=["a", "b", "c"],
        rows=tuples,
        rowcount=len(tuples),
        types=[],
        exec_stats={},
    )
    decoded = decode_result(json.loads(json.dumps(encode_result(source))))
    assert decoded.rows == tuples
