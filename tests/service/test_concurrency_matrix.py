"""Concurrency acceptance matrix: N clients, live daemon, serial replay.

The service's core promise: N concurrent sessions running mixed
reads/writes -- with the materializer daemon (and, in the full matrix,
the background checkpointer) live underneath -- behave as if each
client had the database to itself.  Verified three ways per cell:

* per-session isolation: every client's settings, prepared statements,
  and transaction scope contain exactly what that client put there;
* serial-replay equivalence: each client writes only documents tagged
  with its own id, so the final (tag, seq) multiset must equal a serial
  replay of the same loads on a fresh embedded instance;
* post-run hygiene: no sessions, open transactions, or held latches
  survive the run.

The tier-1 smoke runs one small in-memory cell; the ``slow`` lane runs
the full matrix (durable + checkpointer, heavy shedding, rollback
storms) under ``REPRO_DEBUG_LATCHES=1`` in CI.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core import SinewDB
from repro.service import AsyncServiceClient, ServiceConfig, ServiceError, SinewService

TABLE = "matrix"


def client_batches(client_id: int, loads: int, docs_per_load: int) -> list[list[dict]]:
    batches, seq = [], 0
    for _ in range(loads):
        batch = []
        for _ in range(docs_per_load):
            batch.append({"tag": client_id, "seq": seq, "flag": seq % 2 == 0})
            seq += 1
        batches.append(batch)
    return batches


async def _retry_busy(coroutine_factory, deadline: float = 30.0):
    backoff = 0.01
    waited = 0.0
    while True:
        try:
            return await coroutine_factory()
        except ServiceError as error:
            if error.code != "busy" or not error.retryable or waited >= deadline:
                raise
            await asyncio.sleep(backoff)
            waited += backoff
            backoff = min(backoff * 2, 0.1)


async def _run_client(
    port: int,
    client_id: int,
    *,
    loads: int,
    docs_per_load: int,
    with_rollback_storm: bool,
) -> list[str]:
    """One client's mixed script; returns isolation violations (if any)."""
    problems: list[str] = []
    async with AsyncServiceClient("127.0.0.1", port) as client:
        setting = client_id % 2 == 0
        await _retry_busy(
            lambda: client.request(
                {"op": "set", "key": "use_extraction_cache", "value": setting}
            )
        )
        name = f"mine_{client_id}"
        await _retry_busy(
            lambda: client.request(
                {
                    "op": "prepare",
                    "name": name,
                    "sql": f"SELECT COUNT(*) FROM {TABLE} WHERE tag = {client_id}",
                }
            )
        )
        for batch in client_batches(client_id, loads, docs_per_load):
            await _retry_busy(lambda b=batch: client.load(TABLE, b))
        if with_rollback_storm:
            # a write transaction opened, mutated, and rolled back: must
            # leave zero trace in the final state and zero residue in the
            # engine when interleaved with everyone else's commits
            await _retry_busy(lambda: client.query("BEGIN"))
            await _retry_busy(
                lambda: client.query(
                    f"UPDATE {TABLE} SET seq = 10000 WHERE tag = {client_id}"
                )
            )
            await _retry_busy(lambda: client.query("ROLLBACK"))
        reads = [
            f"SELECT seq FROM {TABLE} WHERE tag = {client_id} AND flag = true",
            f"SELECT COUNT(*) FROM {TABLE} WHERE tag = {client_id}",
        ]
        for sql in reads:
            await _retry_busy(lambda s=sql: client.query(s))
        expected = loads * docs_per_load
        count = (await _retry_busy(
            lambda: client.request({"op": "execute", "name": name})
        ))["result"]["rows"][0][0]
        if count != expected:
            problems.append(
                f"client {client_id}: sees {count} own docs, wrote {expected}"
            )
        session = (await client.request({"op": "session"}))["session"]
        if session["prepared"] != [name]:
            problems.append(f"client {client_id}: foreign prepared {session['prepared']}")
        if session["settings"]["use_extraction_cache"] is not setting:
            problems.append(f"client {client_id}: settings bled {session['settings']}")
        if session["in_transaction"]:
            problems.append(f"client {client_id}: stuck in a transaction")
    return problems


def final_state(sdb: SinewDB) -> list[tuple[int, int]]:
    return sorted(
        (int(tag), int(seq))
        for tag, seq in sdb.query(f"SELECT tag, seq FROM {TABLE}").rows
    )


def run_matrix_cell(
    *,
    n_clients: int,
    loads: int = 2,
    docs_per_load: int = 2,
    durable_path=None,
    checkpoint_interval: float | None = None,
    max_inflight: int = 8,
    with_rollback_storm: bool = False,
) -> None:
    """Boot engine+service, run N clients, assert all three contracts."""
    if durable_path is not None:
        sdb = SinewDB.open(durable_path, "matrix")
    else:
        sdb = SinewDB("matrix")
    try:
        sdb.start_daemon()
        config = ServiceConfig(
            port=0,
            max_sessions=n_clients + 4,
            max_inflight=max_inflight,
            checkpoint_interval=checkpoint_interval,
        )
        with SinewService(sdb, config) as service:
            async def drive():
                return await asyncio.gather(
                    *(
                        _run_client(
                            service.port,
                            client_id,
                            loads=loads,
                            docs_per_load=docs_per_load,
                            with_rollback_storm=with_rollback_storm,
                        )
                        for client_id in range(n_clients)
                    )
                )

            problem_lists = asyncio.run(drive())
            problems = [p for plist in problem_lists for p in plist]
            assert not problems, "\n".join(problems)
            # post-run hygiene on the still-running service; the close
            # ack is written *before* the connection task's cleanup
            # finishes, so deregistration may trail the client by a beat
            deadline = time.monotonic() + 10.0
            while service.sessions and time.monotonic() < deadline:
                time.sleep(0.02)
            assert not service.sessions
            assert not sdb.db.txn_manager.active
            assert sdb.catalog.latch_owner is None
            assert not service.write_lock.locked()
        concurrent = final_state(sdb)
    finally:
        sdb.close()

    # serial replay on a fresh embedded instance: loads only (the
    # rollback storm must contribute nothing)
    replay = SinewDB("matrix-replay")
    try:
        replay.create_collection(TABLE)
        for client_id in range(n_clients):
            for batch in client_batches(client_id, loads, docs_per_load):
                replay.load(TABLE, batch)
        assert concurrent == final_state(replay)
    finally:
        replay.close()


def test_concurrency_smoke():
    """Tier-1 lane: one small in-memory cell, daemon live."""
    run_matrix_cell(n_clients=8)


def test_concurrency_smoke_with_rollbacks():
    """Tier-1 lane: concurrent open transactions + rollbacks leave no trace."""
    run_matrix_cell(n_clients=6, with_rollback_storm=True)


@pytest.mark.slow
def test_matrix_durable_with_checkpointer(tmp_path):
    """Durable engine, checkpointer firing mid-run, WAL + daemon live."""
    run_matrix_cell(
        n_clients=24,
        loads=3,
        durable_path=tmp_path / "matrix-db",
        checkpoint_interval=0.1,
        with_rollback_storm=True,
    )


@pytest.mark.slow
def test_matrix_heavy_shedding():
    """max_inflight=2 under 32 clients: busy storms, zero lost writes."""
    run_matrix_cell(n_clients=32, max_inflight=2, with_rollback_storm=True)


@pytest.mark.slow
def test_matrix_large_inmemory():
    """The wide cell: 64 clients, mixed everything."""
    run_matrix_cell(n_clients=64, loads=3, docs_per_load=3, with_rollback_storm=True)
