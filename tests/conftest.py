"""Shared test configuration: hypothesis profiles and the ``slow`` lane.

Two lanes (mirrored in ``.github/workflows/ci.yml``):

* the **default lane** excludes ``@pytest.mark.slow`` (see ``addopts`` in
  pyproject.toml), so the tier-1 run stays fast and deterministic;
* the **stress lane** runs ``pytest -m slow`` with the pinned ``ci``
  hypothesis profile (``HYPOTHESIS_PROFILE=ci``): derandomized, fixed
  example counts, no deadline -- identical example sequences on every run.
"""

from __future__ import annotations

import os

try:
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "ci",
        derandomize=True,
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile("dev", deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - hypothesis is an optional test dep
    pass
