"""Process-restart crash-recovery matrix.

Each case runs :mod:`repro.testing.crash_child` in a real subprocess with
one durability fault armed, lets it die mid-workload via ``os._exit``
(the in-process equivalent of ``kill -9`` at an exact WAL/checkpoint
instruction), then reopens the database **in this process** and checks
the recovery invariants from the durability design (DESIGN.md section 9):

a. ``SinewDB.check()`` reports no integrity errors;
b. every document committed before the crash is byte-identical to the
   same stage of an uninterrupted control run;
c. no uncommitted data is visible -- the in-flight step is atomic: its
   documents are either all present or all absent (the torn-COMMIT case
   must come back absent);
d. the reopened instance resumes mid-flight materialization from the
   persisted cursors, and finishing the workload converges to exactly
   the control run's settled layout and document set.

When ``RECOVERY_LOG_DIR`` is set, each case writes a JSON record of the
observed crash + recovery (marks, recovery stats, verdicts) there -- CI
uploads these as artifacts.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import SinewDB
from repro.rdbms.types import SqlType
from repro.testing.crash_child import (
    BATCH_A,
    BATCH_B,
    COLLECTION,
    CRASH_EXIT,
    UPDATE_SQL,
)

SRC = Path(__file__).resolve().parents[2] / "src"

#: the armed workload steps, in order, with the documents each one settles
STEPS = ("load2", "update", "settle2", "ckpt", "close")


def run_child(dbpath: Path, point: str | None = None, at: int = 1):
    """Run the crash child; returns (returncode, marks, stderr)."""
    cmd = [sys.executable, "-m", "repro.testing.crash_child", str(dbpath)]
    if point is not None:
        cmd += ["--point", point, "--at", str(at)]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        cmd, capture_output=True, text=True, env=env, timeout=120
    )
    marks = [
        line.split(" ", 1)[1]
        for line in proc.stdout.splitlines()
        if line.startswith("MARK ")
    ]
    return proc.returncode, marks, proc.stderr


def canonical_docs(sdb: SinewDB) -> list[str]:
    """Every logical document, JSON-canonicalized, sorted -- the unit of
    byte-identity comparisons across runs."""
    return sorted(
        json.dumps({"_id": doc_id, **document}, sort_keys=True)
        for doc_id, document in sdb.documents(COLLECTION)
    )


def expected_docs(steps_done: set[str]) -> list[str]:
    """The canonical document set after a given prefix of the workload.

    Only ``load2`` and ``update`` change the logical documents; the
    materializer/checkpoint steps move bytes between storage sides without
    altering any document.
    """
    documents = [dict(d) for d in BATCH_A]
    if "load2" in steps_done:
        documents += [dict(d) for d in BATCH_B]
    if "update" in steps_done:
        for document in documents:
            if document.get("a") == 3:
                document["b"] = "updated"
    return sorted(
        json.dumps({"_id": i, **document}, sort_keys=True)
        for i, document in enumerate(documents)
    )


@pytest.fixture(scope="module")
def control(tmp_path_factory):
    """One uninterrupted run: the reference final state."""
    dbpath = tmp_path_factory.mktemp("control") / "db"
    rc, marks, stderr = run_child(dbpath)
    assert rc == 0, stderr
    assert marks == ["base", *STEPS]
    sdb = SinewDB.open(dbpath)
    try:
        state = {
            "docs": canonical_docs(sdb),
            "schema": sorted(
                (key, sql_type.value, storage)
                for key, sql_type, storage in sdb.logical_schema(COLLECTION)
            ),
        }
    finally:
        sdb.close()
    return state


def record_log(name: str, payload: dict) -> None:
    log_dir = os.environ.get("RECOVERY_LOG_DIR")
    if not log_dir:
        return
    directory = Path(log_dir)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{name}.json").write_text(json.dumps(payload, indent=2))


MATRIX = [
    # first WAL append of the armed phase: nothing after 'base' survives
    ("wal.append", 1),
    # mid-armed-phase append (lands after load2's commit)
    ("wal.append", 12),
    # deep append: lands inside the settle2 row-move transactions, so the
    # reopened database must resume the column move from its cursor
    ("wal.append", 30),
    # crash at the fsync barrier: the COMMIT frame is already flushed to
    # the OS, so the in-flight transaction may come back fully visible
    ("wal.fsync", 1),
    # torn COMMIT frame: recovery must truncate it and discard the txn
    ("wal.torn_write", 1),
    ("checkpoint.pages", 1),
    ("checkpoint.catalog", 1),
    ("checkpoint.truncate", 1),
]


@pytest.mark.parametrize("point,at", MATRIX, ids=[f"{p}@{a}" for p, a in MATRIX])
def test_crash_recovery_matrix(tmp_path, control, point, at):
    dbpath = tmp_path / "db"
    rc, marks, stderr = run_child(dbpath, point, at)
    assert rc == CRASH_EXIT, f"fault never fired: rc={rc} stderr={stderr}"
    assert marks and marks[0] == "base"

    done = set(marks) - {"base"}
    in_flight = next((s for s in STEPS if s not in done), None)

    sdb = SinewDB.open(dbpath)
    try:
        # (a) integrity: recovery may leave dead heap slots and stale-high
        # counters, never errors
        reports = sdb.check()
        assert all(report.ok for report in reports), [
            str(f) for report in reports for f in report.errors
        ]

        # (b)+(c) committed steps byte-identical; in-flight step atomic
        observed = canonical_docs(sdb)
        allowed = {tuple(expected_docs(done))}
        if in_flight is not None:
            allowed.add(tuple(expected_docs(done | {in_flight})))
        if point == "wal.torn_write":
            # a torn COMMIT is not durable by definition: the in-flight
            # transaction must have been discarded
            allowed = {tuple(expected_docs(done))}
        assert tuple(observed) in allowed

        recovery = sdb.last_recovery
        assert recovery is not None and recovery["had_checkpoint"]
        if point == "wal.torn_write":
            assert recovery["torn_offset"] is not None
            assert recovery["txns_discarded"] >= 1

        # (d) resume: finish the workload on the recovered instance and
        # converge to the control run's exact final state
        if len(canonical_docs(sdb)) == len(BATCH_A):
            sdb.load(COLLECTION, BATCH_B)
        sdb.query(UPDATE_SQL)
        sdb.materialize(COLLECTION, "b", SqlType.TEXT)
        sdb.run_materializer(COLLECTION)
        status = sdb.status()
        assert status["collections"][COLLECTION]["dirty"] == 0
        final_docs = canonical_docs(sdb)
        final_schema = sorted(
            (key, sql_type.value, storage)
            for key, sql_type, storage in sdb.logical_schema(COLLECTION)
        )
        assert final_docs == control["docs"]
        assert final_schema == control["schema"]
    finally:
        sdb.close()

    # reopen once more: the post-recovery close must have checkpointed
    # into a state that needs no replay
    sdb = SinewDB.open(dbpath)
    try:
        assert canonical_docs(sdb) == control["docs"]
        assert sdb.last_recovery["records_replayed"] == 0
    finally:
        sdb.close()

    record_log(
        f"{point.replace('.', '_')}_at{at}",
        {
            "point": point,
            "at": at,
            "returncode": rc,
            "marks": marks,
            "in_flight": in_flight,
            "recovery": recovery,
            "converged": True,
        },
    )


def test_clean_restart_replays_nothing(tmp_path, control):
    """A cleanly closed database reopens without touching the WAL."""
    dbpath = tmp_path / "db"
    rc, marks, stderr = run_child(dbpath)
    assert rc == 0, stderr
    sdb = SinewDB.open(dbpath)
    try:
        assert sdb.last_recovery["records_replayed"] == 0
        assert sdb.last_recovery["had_checkpoint"]
        assert canonical_docs(sdb) == control["docs"]
    finally:
        sdb.close()
