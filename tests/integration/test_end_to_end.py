"""Integration tests across subsystems: the full Sinew lifecycle, the plan
flips behind Table 2, the dirty-COALESCE claim of section 3.1.4, and a
miniature four-system NoBench run."""

import pytest

from repro.core import SinewDB
from repro.harness import build_systems, run_suite, small_scale
from repro.nobench import NoBenchGenerator
from repro.rdbms.types import SqlType, type_from_name
from repro.workloads import TABLE1_QUERIES, TABLE2_PHYSICAL_ATTRIBUTES, TwitterGenerator


class TestSinewLifecycle:
    """Load -> analyze -> materialize -> query -> evolve, end to end."""

    def test_full_lifecycle(self):
        sdb = SinewDB("lifecycle")
        sdb.create_collection("events")
        sdb.load(
            "events",
            [{"kind": f"k{i % 3}", "value": i, "meta": {"src": f"s{i}"}} for i in range(400)],
        )
        # 1. queries work fully virtually
        assert sdb.query("SELECT count(*) FROM events WHERE value > 100").scalar() == 299
        # 2. analyzer + materializer settle the hybrid schema
        sdb.settle("events")
        physical = {
            key for key, _t, s in sdb.logical_schema("events") if s == "physical"
        }
        assert "value" in physical
        # 3. same answers afterwards
        assert sdb.query("SELECT count(*) FROM events WHERE value > 100").scalar() == 299
        # 4. schema evolution: new keys appear without DDL
        sdb.load("events", [{"kind": "k9", "brand_new_key": True, "value": 1000}])
        assert sdb.query(
            "SELECT count(*) FROM events WHERE brand_new_key = true"
        ).scalar() == 1
        # 5. and the materializer absorbs the new rows
        sdb.run_materializer("events")
        assert sdb.query("SELECT max(value) FROM events").scalar() == 1000

    def test_documents_survive_arbitrary_settling(self):
        sdb = SinewDB("roundtrip")
        sdb.create_collection("t")
        documents = [
            {"a": i, "b": f"s{i}", "nested": {"x": i * 1.5}, "arr": [i, str(i)]}
            for i in range(250)
        ]
        sdb.load("t", documents)
        baseline = [doc for _id, doc in sdb.documents("t")]
        sdb.settle("t")
        assert [doc for _id, doc in sdb.documents("t")] == baseline


class TestTable2PlanFlips:
    """The optimizer-visibility experiment of paper Table 2."""

    @pytest.fixture(scope="class")
    def systems(self):
        generator = TwitterGenerator(6000)

        def build(materialize: bool) -> SinewDB:
            sdb = SinewDB(f"t2_{materialize}")
            sdb.create_collection("tweets")
            sdb.create_collection("deletes")
            sdb.load("tweets", generator.tweets())
            sdb.load("deletes", generator.deletes(2000))
            if materialize:
                for key, type_name in TABLE2_PHYSICAL_ATTRIBUTES:
                    table = "deletes" if key.startswith("delete.") else "tweets"
                    sdb.materialize(table, key, type_from_name(type_name))
                sdb.run_materializer("tweets")
                sdb.run_materializer("deletes")
            sdb.analyze()
            return sdb

        return build(False), build(True)

    def test_t1_distinct_flips_hash_to_unique(self, systems):
        virtual, physical = systems
        virtual_plan = virtual.explain(TABLE1_QUERIES["T1"])
        physical_plan = physical.explain(TABLE1_QUERIES["T1"])
        assert "HashAggregate" in virtual_plan.splitlines()[0]
        assert "Unique" in physical_plan.splitlines()[0]

    def test_t2_group_by_estimates_flip(self, systems):
        virtual, physical = systems
        virtual_plan = virtual.explain(TABLE1_QUERIES["T2"])
        physical_plan = physical.explain(TABLE1_QUERIES["T2"])
        assert "rows=200" in virtual_plan  # the fixed UDF default
        assert "rows=200" not in physical_plan

    def test_t3_plans_differ(self, systems):
        virtual, physical = systems
        assert virtual.explain(TABLE1_QUERIES["T3"]) != physical.explain(
            TABLE1_QUERIES["T3"]
        )

    def test_results_identical_across_conditions(self, systems):
        virtual, physical = systems
        for query_id in ("T1", "T2", "T3"):
            virtual_rows = sorted(map(repr, virtual.query(TABLE1_QUERIES[query_id]).rows))
            physical_rows = sorted(map(repr, physical.query(TABLE1_QUERIES[query_id]).rows))
            assert virtual_rows == physical_rows, query_id


class TestDirtyCoalesceOverhead:
    """Section 3.1.4: queries during materialization stay correct and the
    COALESCE overhead is bounded."""

    def test_query_correct_at_every_materialization_stage(self):
        sdb = SinewDB("stages")
        sdb.create_collection("t")
        sdb.load("t", [{"k": f"v{i}", "n": i} for i in range(300)])
        sdb.materialize("t", "k", SqlType.TEXT)
        expected = sdb.query("SELECT count(*) FROM t WHERE k IS NOT NULL").scalar()
        while sdb.materializer.pending("t"):
            sdb.materializer_step("t", max_rows=37)
            assert (
                sdb.query("SELECT count(*) FROM t WHERE k IS NOT NULL").scalar()
                == expected
            )


class TestMiniFigure6:
    """A four-system NoBench run at reduced scale: the orderings that
    constitute the paper's headline claims."""

    @pytest.fixture(scope="class")
    def results(self):
        # 3000 records and best-of-5: below this scale the per-query gaps
        # are a few ms and scheduler noise can flip the orderings
        scale = small_scale()
        object.__setattr__(scale, "n_records", 3000)
        runs, _params = build_systems(scale, NoBenchGenerator(3000))
        suite = run_suite(runs, ["q1", "q2", "q5", "q10"], repeats=5)
        return {r.name: r for r in runs}, suite

    def test_all_systems_loaded(self, results):
        runs, _suite = results
        assert set(runs) == {"Sinew", "MongoDB", "EAV", "PG JSON"}

    def test_sinew_beats_pgjson_and_eav_on_projections(self, results):
        _runs, suite = results
        for query_id in ("q1", "q2"):
            sinew = suite[query_id]["Sinew"].wall_seconds
            assert suite[query_id]["PG JSON"].wall_seconds > sinew
            assert suite[query_id]["EAV"].wall_seconds > sinew

    def test_sinew_fastest_on_selection(self, results):
        _runs, suite = results
        times = {name: m.wall_seconds for name, m in suite["q5"].items()}
        assert min(times, key=times.get) == "Sinew"

    def test_no_failures_at_small_scale(self, results):
        _runs, suite = results
        for per_system in suite.values():
            for measurement in per_system.values():
                assert measurement.failed is None
