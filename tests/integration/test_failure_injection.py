"""Failure injection: errors mid-statement must leave no partial state.

The RDBMS-backed systems claim transactional semantics (the paper's
argument for Sinew over MongoDB in section 6.6); these tests inject
failures part-way through multi-row statements and check atomicity.
"""

import pytest

from repro.core import SinewDB
from repro.rdbms.database import Database, DatabaseConfig
from repro.rdbms.errors import DiskFullError, ExecutionError, TypeCastError
from repro.rdbms.types import SqlType


class TestRdbmsAtomicity:
    def test_update_rolls_back_on_mid_statement_error(self):
        db = Database("atomic")
        db.execute("CREATE TABLE t (id integer, v integer)")
        db.insert_rows("t", [(i, i) for i in range(10)])

        calls = {"n": 0}

        def explode_on_seventh(value):
            calls["n"] += 1
            if calls["n"] == 7:
                raise ExecutionError("injected failure")
            return value * 10

        db.create_function("explode", explode_on_seventh, SqlType.INTEGER)
        with pytest.raises(ExecutionError, match="injected"):
            db.execute("UPDATE t SET v = explode(v)")
        # nothing committed: all original values intact
        assert db.execute("SELECT sum(v) FROM t").scalar() == sum(range(10))

    def test_delete_rolls_back_on_error(self):
        db = Database("atomic2")
        db.execute("CREATE TABLE t (id integer)")
        db.insert_rows("t", [(i,) for i in range(10)])
        calls = {"n": 0}

        def explode(value):
            calls["n"] += 1
            if calls["n"] > 5:
                raise ExecutionError("boom")
            return True

        db.create_function("explode", explode, SqlType.BOOLEAN)
        with pytest.raises(ExecutionError):
            db.execute("DELETE FROM t WHERE explode(id)")
        assert db.execute("SELECT count(*) FROM t").scalar() == 10

    def test_insert_batch_rolls_back_on_disk_full(self):
        db = Database("atomic3", DatabaseConfig(disk_budget_bytes=3 * 8192))
        db.execute("CREATE TABLE t (v text)")
        with pytest.raises(DiskFullError):
            db.insert_rows("t", [("x" * 100,) for _ in range(10_000)])
        # the failed batch left nothing behind
        assert db.execute("SELECT count(*) FROM t").scalar() == 0

    def test_cast_error_aborts_query_cleanly(self):
        db = Database("atomic4")
        db.execute("CREATE TABLE t (v text)")
        db.insert_rows("t", [("1",), ("two",), ("3",)])
        with pytest.raises(TypeCastError):
            db.execute("SELECT v::integer FROM t")
        # the table is still usable afterwards
        assert db.execute("SELECT count(*) FROM t").scalar() == 3


class TestSinewAtomicity:
    def test_sinew_update_rolls_back_with_reservoir_writes(self):
        sdb = SinewDB("sinatomic")
        sdb.create_collection("t")
        sdb.load("t", [{"k": f"v{i}", "n": i} for i in range(10)])

        # make the WHERE predicate explode after matching a few rows by
        # sabotaging the UDF registry's extraction function
        original = sdb.extractor.extract_num
        calls = {"n": 0}

        def flaky(data, key):
            calls["n"] += 1
            if calls["n"] == 8:
                raise ExecutionError("flaky extraction")
            return original(data, key)

        sdb.db.functions.register_scalar("extract_key_num", flaky, SqlType.REAL)
        with pytest.raises(ExecutionError):
            sdb.execute("UPDATE t SET k = 'DAMAGED' WHERE n >= 0")
        sdb.db.functions.register_scalar(
            "extract_key_num", original, SqlType.REAL
        )
        damaged = sdb.query("SELECT count(*) FROM t WHERE k = 'DAMAGED'").scalar()
        assert damaged == 0

    def test_wal_records_written_for_sinew_updates(self):
        sdb = SinewDB("sinwal")
        sdb.create_collection("t")
        sdb.load("t", [{"k": "a"}, {"k": "b"}])
        before = sdb.db.counters.wal_records
        sdb.execute("UPDATE t SET k = 'z' WHERE k = 'a'")
        assert sdb.db.counters.wal_records > before  # transactional overhead
