"""Concurrency stress: parallel queries racing the materializer daemon.

The invariant under test is the Sinew transparency guarantee (paper
section 3.1.4): query results never depend on *where* a value currently
lives (column reservoir, physical column, or mid-move), so a morsel-
parallel scan racing the background materializer must return exactly the
rows a quiet serial engine returns.

FaultInjector delay plans at the materializer latch points stretch the
latch-held windows so scans genuinely overlap row moves.
"""

import threading

import pytest

from repro.core.sinew import SinewConfig, SinewDB
from repro.nobench.generator import NoBenchGenerator
from repro.rdbms.database import DatabaseConfig
from repro.testing import disable_latch_tracking, enable_latch_tracking
from repro.testing.faults import FaultInjector


@pytest.fixture(autouse=True)
def _latch_tracking():
    """Scans, loads and daemon steps all run under the latch-order
    detector; an ordering inversion fails the test immediately."""
    tracker = enable_latch_tracking()
    try:
        yield tracker
    finally:
        disable_latch_tracking()
    assert tracker.violations == []


TABLE = "stress_docs"

QUERIES = [
    f"SELECT str1, num FROM {TABLE}",
    f'SELECT "nested_obj.str", "nested_obj.num" FROM {TABLE}',
    f"SELECT str1 FROM {TABLE} WHERE num % 3 = 0",
    f"SELECT num, str1 FROM {TABLE} WHERE num % 7 = 1 ORDER BY num",
    f"SELECT count(*) FROM {TABLE}",
    f"SELECT thousandth, count(*) FROM {TABLE} GROUP BY thousandth",
    f"SELECT num FROM {TABLE} ORDER BY num DESC LIMIT 20",
    f"SELECT str1, count(*) FROM {TABLE} GROUP BY str1 ORDER BY str1",
]

#: attributes the daemon is asked to move while queries are in flight
FLIP_KEYS = ["num", "str1", "thousandth"]


def _build(name: str, n_docs: int, workers: int) -> SinewDB:
    sdb = SinewDB(
        name,
        SinewConfig(
            database=DatabaseConfig(parallel_workers=workers),
            daemon_step_rows=200,
            daemon_idle_sleep=0.001,
        ),
    )
    sdb.create_collection(TABLE)
    sdb.load(TABLE, list(NoBenchGenerator(n_docs, seed=7).documents()))
    return sdb


def _key_types(sdb: SinewDB) -> dict[str, object]:
    return {key: key_type for key, key_type, _storage in sdb.logical_schema(TABLE)}


def _run_stress(n_docs: int, n_threads: int, n_iterations: int) -> None:
    # the reference engine: serial, no daemon, fully virtual layout
    reference = _build("stress_ref", n_docs, workers=1)
    expected = {sql: reference.query(sql).rows for sql in QUERIES}
    reference.close()

    sdb = _build("stress_sut", n_docs, workers=4)
    types = _key_types(sdb)
    injector = FaultInjector()
    sdb.attach_faults(injector)
    # stretch the latch-held move windows so scans overlap them for real
    injector.plan(
        "materializer.before_row_move", "delay", delay=0.0005, at=1, count=None
    )
    failures: list[str] = []

    def query_thread(thread_id: int) -> None:
        for iteration in range(n_iterations):
            sql = QUERIES[(thread_id + iteration) % len(QUERIES)]
            try:
                rows = sdb.query(sql).rows
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                failures.append(f"{sql!r} raised {exc!r}")
                return
            if rows != expected[sql]:
                failures.append(
                    f"{sql!r} diverged under concurrency "
                    f"({len(rows)} rows vs {len(expected[sql])} expected)"
                )

    sdb.start_daemon()
    try:
        # keep the daemon busy: mark columns for materialization while the
        # query threads run (the dirty->physical moves race the scans)
        threads = [
            threading.Thread(target=query_thread, args=(i,), daemon=True)
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for key in FLIP_KEYS:
            sdb.materialize(TABLE, key, types[key])
            sdb.daemon.kick()
        for thread in threads:
            thread.join(timeout=300)
            assert not thread.is_alive(), "stress query thread hung"
    finally:
        sdb.stop_daemon()

    assert not failures, "\n".join(failures)
    assert injector.fired("materializer.before_row_move") > 0, (
        "the daemon never raced a query; stress window too small"
    )

    # flip everything back (dematerialize) with no queries in flight, then
    # confirm the results still match the reference byte for byte
    for key in FLIP_KEYS:
        sdb.dematerialize(TABLE, key, types[key])
    sdb.run_materializer(TABLE)
    for sql in QUERIES:
        assert sdb.query(sql).rows == expected[sql], sql
    sdb.close()


def test_parallel_queries_race_materializer_smoke():
    """Tier-1 variant: small corpus, a few threads, still a real race."""
    _run_stress(n_docs=1200, n_threads=3, n_iterations=4)


@pytest.mark.slow
def test_parallel_queries_race_materializer_stress():
    """Full stress: 8 threads of mixed NoBench queries vs column flips."""
    _run_stress(n_docs=6000, n_threads=8, n_iterations=8)
