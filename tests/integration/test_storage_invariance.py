"""Metamorphic property: query answers are invariant under physical layout.

Sinew's core correctness contract is that the logical universal relation
never changes meaning as the analyzer/materializer shuffle attributes
between the reservoir and physical columns.  These tests run a battery of
queries against the *same* documents under several randomly chosen
materialization states (including partially-moved dirty states) and
require identical answers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SinewDB
from repro.rdbms.types import SqlType

KEYS = [
    ("alpha", SqlType.TEXT),
    ("beta", SqlType.INTEGER),
    ("gamma", SqlType.REAL),
    ("delta", SqlType.BOOLEAN),
    ("nested", SqlType.BYTEA),
]

QUERIES = [
    "SELECT count(*) FROM t",
    "SELECT count(*) FROM t WHERE beta > 40",
    "SELECT alpha FROM t WHERE beta = 7",
    "SELECT count(*) FROM t WHERE delta = true",
    "SELECT sum(beta), avg(gamma) FROM t",
    'SELECT count(*) FROM t WHERE "nested.x" > 10',
    "SELECT alpha, beta FROM t WHERE gamma BETWEEN 1.0 AND 25.0",
    "SELECT beta % 5, count(*) FROM t GROUP BY beta % 5",
    "SELECT count(*) FROM t WHERE alpha LIKE 'name-1%'",
    "SELECT DISTINCT delta FROM t",
]


def build_documents():
    documents = []
    for index in range(120):
        document = {
            "alpha": f"name-{index}",
            "beta": index % 83,
            "gamma": (index % 50) / 2.0,
            "delta": index % 3 == 0,
        }
        if index % 4 != 0:
            document["nested"] = {"x": index % 30, "label": f"n{index % 5}"}
        documents.append(document)
    return documents


def answers(sdb: SinewDB) -> list:
    out = []
    for sql in QUERIES:
        result = sdb.query(sql)
        out.append(sorted(map(repr, result.rows)))
    return out


@pytest.fixture(scope="module")
def baseline():
    sdb = SinewDB("inv_base")
    sdb.create_collection("t")
    sdb.load("t", build_documents())
    return answers(sdb)


@st.composite
def layouts(draw):
    """A random subset of keys to materialize + a partial-move fraction."""
    chosen = draw(
        st.lists(st.sampled_from(range(len(KEYS))), max_size=len(KEYS), unique=True)
    )
    partial = draw(st.integers(min_value=0, max_value=120))
    return chosen, partial


class TestLayoutInvariance:
    @given(layouts())
    @settings(max_examples=25, deadline=None)
    def test_any_materialization_state_gives_same_answers(self, baseline, layout):
        chosen, partial = layout
        sdb = SinewDB("inv")
        sdb.create_collection("t")
        sdb.load("t", build_documents())
        for key_index in chosen:
            key, sql_type = KEYS[key_index]
            sdb.materialize("t", key, sql_type)
        if partial:
            sdb.materializer_step("t", max_rows=partial)  # dirty state
        assert answers(sdb) == baseline

    def test_full_then_dematerialize_roundtrip(self, baseline):
        sdb = SinewDB("inv_full")
        sdb.create_collection("t")
        sdb.load("t", build_documents())
        for key, sql_type in KEYS:
            sdb.materialize("t", key, sql_type)
        sdb.run_materializer("t")
        sdb.analyze()
        assert answers(sdb) == baseline
        for key, sql_type in KEYS:
            sdb.dematerialize("t", key, sql_type)
        sdb.run_materializer("t")
        assert answers(sdb) == baseline
