"""Tests for the CHECK-style catalog/storage integrity pass."""

import struct

import pytest

from repro.analysis.checker import validate_document
from repro.core import SinewDB
from repro.core import serializer
from repro.rdbms.types import SqlType


@pytest.fixture()
def sdb():
    instance = SinewDB("chk")
    instance.create_collection("t")
    instance.load(
        "t",
        [{"url": f"u{i}.com", "hits": i, "name": f"n{i}"} for i in range(20)],
    )
    return instance


def table_and_positions(sdb):
    table = sdb.db.table("t")
    return table, table.schema.position_of("data")


def findings_with_code(reports, code):
    return [f for report in reports for f in report.findings if f.code == code]


class TestCleanDatabase:
    def test_clean_table_has_no_findings(self, sdb):
        (report,) = sdb.check("t")
        assert report.ok
        assert report.rows_scanned == 20

    def test_settled_table_still_clean(self, sdb):
        sdb.settle("t")
        (report,) = sdb.check("t")
        assert report.ok, [str(f) for f in report.findings]

    def test_check_all_collections(self, sdb):
        sdb.create_collection("u")
        reports = sdb.check()
        assert [r.table_name for r in reports] == ["t", "u"]
        assert all(r.ok for r in reports)


class TestSeededCorruption:
    def test_malformed_header_snw303(self, sdb):
        table, data_position = table_and_positions(sdb)
        rid, row = next(table.scan())
        bad = list(row)
        # header claims 5 attributes but the bytes end after the count word
        bad[data_position] = struct.pack("<I", 5)
        table.update(rid, tuple(bad))

        (report,) = sdb.check("t")
        bad_findings = [f for f in report.findings if f.code == "SNW303"]
        assert len(bad_findings) == 1
        assert bad_findings[0].is_error
        assert "claims 5 attribute" in bad_findings[0].message

    def test_unsorted_attribute_ids_snw303(self, sdb):
        table, data_position = table_and_positions(sdb)
        rid, row = next(table.scan())
        data = bytearray(row[data_position])
        # swap the first two attribute ids in the header: ids must be
        # strictly ascending for binary search to work
        (first,) = struct.unpack_from("<I", data, 4)
        (second,) = struct.unpack_from("<I", data, 8)
        struct.pack_into("<I", data, 4, second)
        struct.pack_into("<I", data, 8, first)
        bad = list(row)
        bad[data_position] = bytes(data)
        table.update(rid, tuple(bad))

        (report,) = sdb.check("t")
        assert any(
            f.code == "SNW303" and "ascending" in f.message
            for f in report.findings
        )

    def test_unknown_attribute_id_snw304(self, sdb):
        table, data_position = table_and_positions(sdb)
        rid, row = next(table.scan())
        bad = list(row)
        bad[data_position] = serializer.serialize(
            [(99999, SqlType.INTEGER, 7)]
        )
        table.update(rid, tuple(bad))

        (report,) = sdb.check("t")
        assert any(
            f.code == "SNW304" and "99999" in f.message and f.is_error
            for f in report.findings
        )

    def test_count_undercount_snw301(self, sdb):
        # a catalog count lower than stored occurrences is impossible
        # under correct maintenance -> hard error
        (attribute,) = sdb.catalog.attributes_named("hits")
        state = sdb.catalog.table("t").columns[attribute.attr_id]
        state.count -= 3

        (report,) = sdb.check("t")
        mismatches = [f for f in report.findings if f.code == "SNW301"]
        assert len(mismatches) == 1
        assert mismatches[0].is_error

    def test_count_stale_high_is_warning(self, sdb):
        (attribute,) = sdb.catalog.attributes_named("hits")
        sdb.catalog.table("t").columns[attribute.attr_id].count += 2

        (report,) = sdb.check("t")
        mismatches = [f for f in report.findings if f.code == "SNW301"]
        assert len(mismatches) == 1
        assert not mismatches[0].is_error

    def test_reservoir_residue_snw302(self, sdb):
        sdb.materialize("t", "url", SqlType.TEXT)
        sdb.run_materializer("t")
        (report,) = sdb.check("t")
        assert report.ok  # mover finished: no residue

        # sneak the materialized attribute back into one reservoir doc
        (attribute,) = sdb.catalog.attributes_named("url")
        table, data_position = table_and_positions(sdb)
        rid, row = next(table.scan())
        data = serializer.add_attribute(
            row[data_position],
            attribute.attr_id,
            SqlType.TEXT,
            "sneaky",
            lambda aid: sdb.catalog.attribute(aid).key_type,
        )
        bad = list(row)
        bad[data_position] = data
        table.update(rid, tuple(bad))
        # keep the count consistent so only the residue fires
        sdb.catalog.table("t").columns[attribute.attr_id].count += 1

        (report,) = sdb.check("t")
        residue = [f for f in report.findings if f.code == "SNW302"]
        assert len(residue) == 1
        assert residue[0].is_error

    def test_missing_physical_column_snw306(self, sdb):
        (attribute,) = sdb.catalog.attributes_named("name")
        state = sdb.catalog.table("t").columns[attribute.attr_id]
        state.materialized = True
        state.physical_name = "name_gone"

        (report,) = sdb.check("t")
        assert any(f.code == "SNW306" and f.is_error for f in report.findings)

    def test_rowcount_mismatch_snw305(self, sdb):
        sdb.catalog.table("t").n_documents -= 5

        (report,) = sdb.check("t")
        assert any(f.code == "SNW305" and f.is_error for f in report.findings)

    def test_example_cap_summarizes(self, sdb):
        table, data_position = table_and_positions(sdb)
        for rid, row in list(table.scan())[:10]:
            bad = list(row)
            bad[data_position] = b"\x01"  # shorter than the count word
            table.update(rid, tuple(bad))

        (report,) = sdb.check("t")
        detailed = [
            f
            for f in report.findings
            if f.code == "SNW303" and "suppressed" not in f.message
        ]
        summaries = [
            f
            for f in report.findings
            if f.code == "SNW303" and "suppressed" in f.message
        ]
        assert len(detailed) == 5
        assert len(summaries) == 1


class TestValidateDocument:
    def test_round_trip_is_valid(self):
        data = serializer.serialize(
            [(1, SqlType.INTEGER, 5), (2, SqlType.TEXT, "x")]
        )
        assert validate_document(data) is None

    def test_empty_document_is_valid(self):
        assert validate_document(serializer.serialize([])) is None

    def test_non_bytes_rejected(self):
        assert "not bytes" in validate_document("a string")

    def test_truncated_rejected(self):
        assert "truncated" in validate_document(b"\x01")

    def test_body_length_mismatch(self):
        data = serializer.serialize([(1, SqlType.INTEGER, 5)])
        assert "mismatch" in validate_document(data + b"extra")


class TestSinewCheckUdf:
    def test_per_row_udf_reports_ok(self, sdb):
        result = sdb.query("SELECT _id, sinew_check(data) FROM t")
        assert len(result.rows) == 20
        assert all(row[1] == "ok" for row in result.rows)

    def test_per_row_udf_reports_problem(self, sdb):
        table, data_position = table_and_positions(sdb)
        rid, row = next(table.scan())
        bad = list(row)
        bad[data_position] = struct.pack("<I", 9)
        table.update(rid, tuple(bad))
        result = sdb.query("SELECT sinew_check(data) FROM t")
        problems = [row[0] for row in result.rows if row[0] != "ok"]
        assert len(problems) == 1
        assert "claims 9 attribute" in problems[0]
