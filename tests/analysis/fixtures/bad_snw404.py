"""SNW404 fixture: durable WAL appended before activate()."""


def open_database(counters, wal_dir):
    wal = WriteAheadLog(counters, wal_dir)  # noqa: F821 - fixture corpus only
    wal.append(1, "begin")  # marker:snw404
    wal.activate()
    return wal
