"""SNW401 fixture: a @requires_latch callee invoked with no latch held."""

from repro.latching import requires_latch


class Catalog:
    def __init__(self):
        self.counts = {}

    @requires_latch("catalog")
    def mutate_counts(self, attr_id, occurrences):
        self.counts[attr_id] = self.counts.get(attr_id, 0) + occurrences


def rogue_caller(catalog):
    catalog.mutate_counts(7, 1)  # marker:snw401
