"""SNW403 clean fixture: every point registered, every registration fired."""

_KNOWN_POINTS = {
    "fixture.static_point",
}

register_point("fixture.dynamic_point")  # noqa: F821 - fixture corpus only


class Component:
    def __init__(self, faults):
        self.faults = faults

    def static_site(self):
        self.faults.fire("fixture.static_point", table="t")

    def dynamic_site(self):
        self.faults.fire("fixture.dynamic_point", table="t")

    def non_literal_site(self, point):
        # dynamic point names are out of scope for the static pass
        self.faults.fire(point, table="t")
