"""SNW403 fixture: a fire() site with a typo'd (unregistered) point name."""

_KNOWN_POINTS = {
    "fixture.registered_point",
}


class Component:
    def __init__(self, faults):
        self.faults = faults

    def good_site(self):
        self.faults.fire("fixture.registered_point", table="t")

    def bad_site(self):
        self.faults.fire("fixture.registered_pont", table="t")  # marker:snw403
