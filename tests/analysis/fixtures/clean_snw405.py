"""SNW405 clean fixture: with-block and try/finally acquisitions."""

import threading

_lock = threading.Lock()


def with_block(rows):
    with _lock:
        return sum(rows)


def try_finally(rows):
    _lock.acquire()
    try:
        return sum(rows)
    finally:
        _lock.release()
