"""SNW405 fixture: bare acquire() with no try/finally release."""

import threading

_lock = threading.Lock()


def unsafe_critical_section(rows):
    _lock.acquire()  # marker:snw405
    total = sum(rows)
    _lock.release()
    return total
