"""SNW404 clean fixture: recover/activate before append; in-memory exempt."""


def open_database(counters, wal_dir):
    wal = WriteAheadLog(counters, wal_dir)  # noqa: F821 - fixture corpus only
    wal.activate()
    wal.append(1, "begin")
    return wal


def scratch_wal(counters):
    # an in-memory WAL (no directory) has no recovery phase to respect
    wal = WriteAheadLog(counters)  # noqa: F821 - fixture corpus only
    wal.append(1, "begin")
    return wal


def unrelated_append(items):
    # list.append on a non-WAL binding is not a finding
    items.append("row")
    return items
