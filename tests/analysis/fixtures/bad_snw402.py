"""SNW402 fixture: materialized becomes visible before dirty."""


def flip_backwards(state, catalog):
    state.cursor = 0
    state.materialized = True  # marker:snw402
    state.dirty = True
    catalog.log(state)
