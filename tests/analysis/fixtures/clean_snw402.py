"""SNW402 clean fixture: dirty written first; lone flags are exempt."""


def flip_forwards(state, catalog):
    state.cursor = 0
    state.dirty = True
    state.materialized = True
    catalog.log(state)


def clear_dirty_only(state):
    # a single-flag write carries no ordering obligation
    state.dirty = False


def two_columns(first, second):
    # writes to *different* column states are independent
    first.materialized = True
    second.dirty = True
