"""SNW401 clean fixture: every call site holds or propagates the latch."""

from repro.latching import requires_latch


class Catalog:
    def __init__(self):
        self.counts = {}

    @requires_latch("catalog")
    def mutate_counts(self, attr_id, occurrences):
        self.counts[attr_id] = self.counts.get(attr_id, 0) + occurrences


def latched_caller(catalog):
    with catalog.exclusive_latch("loader"):
        catalog.mutate_counts(7, 1)


@requires_latch("catalog")
def propagating_caller(catalog):
    # tagged itself: the obligation moves to *its* callers
    catalog.mutate_counts(7, 1)
