"""The engine-protocol analyzer (SNW4xx rules) against its fixture corpus.

Each ``bad_snw40X.py`` fixture seeds exactly one violation on a line
tagged ``# marker:snw40X``; each ``clean_snw40X.py`` exercises the same
constructs correctly.  The tests assert exact code + line on the bad set,
zero false positives on the clean set, and -- the acceptance criterion --
zero findings on ``src/repro`` itself.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.analysis import diagnostics
from repro.analysis.protocol import (
    analyze_paths,
    collect_fire_sites,
    format_finding,
    main,
)

FIXTURES = Path(__file__).parent / "fixtures"
SRC_REPRO = Path(repro.__file__).resolve().parent


def marker_line(path: Path, marker: str) -> int:
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if marker in line:
            return lineno
    raise AssertionError(f"no {marker!r} marker in {path}")


class TestBadCorpus:
    @pytest.mark.parametrize(
        "code",
        ["SNW401", "SNW402", "SNW403", "SNW404", "SNW405"],
    )
    def test_each_rule_flags_its_fixture(self, code):
        tag = code[3:]
        path = FIXTURES / f"bad_snw{tag}.py"
        findings = analyze_paths([path])
        assert len(findings) == 1, [str(f) for f in findings]
        finding = findings[0]
        assert finding.code == code
        assert finding.line == marker_line(path, f"marker:snw{tag}")
        assert finding.path is not None and finding.path.endswith(f"bad_snw{tag}.py")
        assert finding.severity is diagnostics.Severity.ERROR

    def test_whole_corpus_merges_cross_module_state(self):
        # Analyzing bad + clean together: registries and @requires_latch
        # tags merge across modules, and exactly the five seeded
        # violations survive.
        findings = analyze_paths([FIXTURES])
        assert sorted(f.code for f in findings) == [
            "SNW401",
            "SNW402",
            "SNW403",
            "SNW404",
            "SNW405",
        ]


class TestCleanCorpus:
    def test_zero_findings(self):
        clean = sorted(FIXTURES.glob("clean_*.py"))
        assert len(clean) == 5
        findings = analyze_paths(clean)
        assert findings == [], [str(f) for f in findings]


class TestEngineTree:
    def test_src_repro_is_clean(self):
        findings = analyze_paths([SRC_REPRO])
        assert findings == [], [format_finding(f) for f in findings]

    def test_fire_sites_collected_from_engine(self):
        sites = collect_fire_sites([SRC_REPRO])
        points = {point for _path, _line, point in sites}
        prefixes = {point.split(".")[0] for point in points}
        assert {"loader", "materializer", "daemon", "wal", "checkpoint"} <= prefixes


class TestSuppressionPragma:
    def test_line_pragma_waives_named_code(self, tmp_path):
        module = tmp_path / "m.py"
        module.write_text(
            "import threading\n"
            "_lock = threading.Lock()\n"
            "def f():\n"
            "    _lock.acquire()  # protocol: ignore[SNW405]\n"
            "    _lock.release()\n"
        )
        assert analyze_paths([module]) == []

    def test_pragma_for_other_code_does_not_waive(self, tmp_path):
        module = tmp_path / "m.py"
        module.write_text(
            "import threading\n"
            "_lock = threading.Lock()\n"
            "def f():\n"
            "    _lock.acquire()  # protocol: ignore[SNW402]\n"
            "    _lock.release()\n"
        )
        findings = analyze_paths([module])
        assert [f.code for f in findings] == ["SNW405"]

    def test_empty_pragma_waives_everything(self, tmp_path):
        module = tmp_path / "m.py"
        module.write_text(
            "import threading\n"
            "_lock = threading.Lock()\n"
            "def f():\n"
            "    _lock.acquire()  # protocol: ignore[]\n"
            "    _lock.release()\n"
        )
        assert analyze_paths([module]) == []


class TestRegistryFallback:
    def test_subset_without_registry_uses_live_registry(self, tmp_path):
        # A module with fire() sites but no _KNOWN_POINTS literal is
        # checked against the live repro.testing.faults registry ...
        module = tmp_path / "m.py"
        module.write_text(
            "def f(faults):\n"
            "    faults.fire('loader.before_insert')\n"
            "    faults.fire('no.such_point')\n"
        )
        findings = analyze_paths([module])
        assert [f.code for f in findings] == ["SNW403"]
        assert "no.such_point" in findings[0].message

    def test_fallback_can_be_disabled(self, tmp_path):
        module = tmp_path / "m.py"
        module.write_text("def f(faults):\n    faults.fire('no.such_point')\n")
        assert analyze_paths([module], registry_fallback=False) == []


class TestCli:
    def test_strict_exit_codes(self, capsys):
        assert main(["--strict", str(FIXTURES / "bad_snw402.py")]) == 1
        assert main([str(FIXTURES / "bad_snw402.py")]) == 0  # advisory mode
        assert main(["--strict", str(FIXTURES / "clean_snw402.py")]) == 0
        out = capsys.readouterr().out
        assert "SNW402" in out
        assert "engine protocol: clean" in out

    def test_module_entrypoint(self):
        env = dict(os.environ)
        src = str(SRC_REPRO.parent)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.protocol", "--strict", str(SRC_REPRO)],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "engine protocol: clean" in proc.stdout
        assert "RuntimeWarning" not in proc.stderr

    def test_finding_rendering(self):
        findings = analyze_paths([FIXTURES / "bad_snw404.py"])
        (finding,) = findings
        text = format_finding(finding)
        assert text.startswith(f"{finding.path}:{finding.line}: SNW404")
        # Diagnostic.__str__ also carries the path:line location
        assert f"{finding.path}:{finding.line}" in str(finding)
