"""Tests for the semantic analyzer and catalog-aware query linter."""

import pytest

from repro.analysis import Severity, analyze, render_diagnostic
from repro.core import SinewConfig, SinewDB
from repro.rdbms.errors import PlanningError, SemanticError
from repro.rdbms.types import SqlType


@pytest.fixture()
def sdb():
    instance = SinewDB("an")
    instance.create_collection("t")
    instance.load(
        "t",
        [
            {"url": "a.com", "hits": 22, "dyn": 5, "flag": True},
            {"url": "b.com", "hits": 7, "dyn": "five"},
            {"url": "c.com", "hits": 15, "dyn": 9},
        ],
    )
    instance.db.create_table("plain", [("x", SqlType.INTEGER)])
    return instance


def run(sdb, sql):
    return analyze(
        sql, catalog=sdb.catalog, collections=set(sdb.collections()), db=sdb.db
    )


def codes(result):
    return [d.code for d in result.diagnostics]


def fragment(sql, diagnostic):
    assert diagnostic.span is not None, diagnostic
    start, end = diagnostic.span
    return sql[start:end]


class TestSemanticErrors:
    def test_unknown_table_snw101(self, sdb):
        sql = "SELECT x FROM missing"
        result = run(sdb, sql)
        assert codes(result) == ["SNW101"]
        assert fragment(sql, result.errors[0]) == "missing"

    def test_unknown_table_alias_snw101(self, sdb):
        sql = "SELECT q.url FROM t"
        result = run(sdb, sql)
        assert codes(result) == ["SNW101"]
        assert fragment(sql, result.errors[0]) == "q.url"

    def test_unknown_plain_column_snw102(self, sdb):
        sql = "SELECT nope FROM plain"
        result = run(sdb, sql)
        assert codes(result) == ["SNW102"]
        assert fragment(sql, result.errors[0]) == "nope"

    def test_ambiguous_column_snw103(self, sdb):
        sdb.create_collection("u")
        sdb.load("u", [{"url": "x.org"}])
        sql = "SELECT url FROM t, u"
        result = run(sdb, sql)
        assert codes(result) == ["SNW103"]
        assert fragment(sql, result.errors[0]) == "url"
        assert result.errors[0].hint is not None

    def test_unknown_function_snw104(self, sdb):
        sql = "SELECT frobnicate(url) FROM t"
        result = run(sdb, sql)
        assert codes(result) == ["SNW104"]
        assert fragment(sql, result.errors[0]) == "frobnicate(url)"

    def test_aggregate_in_where_snw105(self, sdb):
        sql = "SELECT url FROM t WHERE count(*) > 1"
        result = run(sdb, sql)
        assert "SNW105" in codes(result)
        diagnostic = next(d for d in result.errors if d.code == "SNW105")
        assert fragment(sql, diagnostic) == "count(*)"

    def test_nested_aggregate_snw106(self, sdb):
        sql = "SELECT sum(count(hits)) FROM t"
        result = run(sdb, sql)
        assert "SNW106" in codes(result)

    def test_ungrouped_column_snw107(self, sdb):
        sql = "SELECT url, count(*) FROM t"
        result = run(sdb, sql)
        assert codes(result) == ["SNW107"]
        assert fragment(sql, result.errors[0]) == "url"

    def test_non_numeric_arithmetic_snw108(self, sdb):
        sql = "SELECT url FROM t WHERE hits + 'x' > 1"
        result = run(sdb, sql)
        assert "SNW108" in codes(result)
        diagnostic = next(d for d in result.errors if d.code == "SNW108")
        assert fragment(sql, diagnostic) == "'x'"

    def test_wrong_arg_count_snw109(self, sdb):
        sql = "SELECT length(url, hits) FROM t"
        result = run(sdb, sql)
        assert codes(result) == ["SNW109"]


class TestCatalogLintWarnings:
    def test_unknown_key_warns_snw201(self, sdb):
        sql = "SELECT never_seen FROM t"
        result = run(sdb, sql)
        assert codes(result) == ["SNW201"]
        assert result.ok  # warning, not error
        assert fragment(sql, result.warnings[0]) == "never_seen"

    def test_provably_null_numeric_on_text_key_snw202(self, sdb):
        sql = "SELECT url FROM t WHERE url > 5"
        result = run(sdb, sql)
        assert codes(result) == ["SNW202"]
        assert len(result.null_predicates) == 1

    def test_provably_null_like_on_numeric_key(self, sdb):
        sql = "SELECT url FROM t WHERE hits LIKE 'a%'"
        result = run(sdb, sql)
        assert codes(result) == ["SNW202"]
        assert len(result.null_predicates) == 1

    def test_compatible_comparison_not_flagged(self, sdb):
        # dyn holds both integers and text: numeric comparison can match
        result = run(sdb, "SELECT url FROM t WHERE dyn > 3")
        assert codes(result) == []
        assert not result.null_predicates

    def test_is_null_never_pruned(self, sdb):
        # IS NULL on an always-NULL extraction is TRUE, not NULL; pruning
        # it would be wrong, so it must never be in null_predicates
        result = run(sdb, "SELECT url FROM t WHERE never_seen IS NULL")
        assert not result.null_predicates

    def test_materialized_key_not_pruned(self, sdb):
        sdb.materialize("t", "url", SqlType.TEXT)
        sdb.run_materializer("t")
        result = run(sdb, "SELECT url FROM t WHERE url > 5")
        assert not result.null_predicates

    def test_multi_typed_projection_snw203(self, sdb):
        sql = "SELECT dyn FROM t"
        result = run(sdb, sql)
        assert codes(result) == ["SNW203"]
        assert fragment(sql, result.warnings[0]) == "dyn"

    def test_incompatible_literal_comparison_snw204(self, sdb):
        result = run(sdb, "SELECT url FROM t WHERE 1 = 'x'")
        assert codes(result) == ["SNW204"]


class TestCleanQueries:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT url, hits FROM t WHERE hits > 10",
            "SELECT url, count(*) FROM t GROUP BY url",
            "SELECT t.url AS u FROM t ORDER BY u",
            "SELECT upper(url) FROM t WHERE hits BETWEEN 5 AND 30",
            "SELECT url FROM t, plain WHERE plain.x = hits",
            "SELECT count(*) FROM t HAVING count(*) > 0",
            "SELECT hits, count(*) FROM t GROUP BY hits",
            # alias-qualified group key matches unqualified select spelling
            "SELECT t.url, count(*) FROM t GROUP BY url",
        ],
    )
    def test_no_diagnostics(self, sdb, sql):
        result = run(sdb, sql)
        assert result.diagnostics == (), [str(d) for d in result.diagnostics]


class TestExecutionWiring:
    def test_semantic_error_blocks_execution(self, sdb):
        with pytest.raises(SemanticError) as excinfo:
            sdb.query("SELECT frobnicate(url) FROM t")
        assert "SNW104" in str(excinfo.value)
        # still a PlanningError for existing except-clauses
        assert isinstance(excinfo.value, PlanningError)

    def test_error_carries_position(self, sdb):
        with pytest.raises(SemanticError) as excinfo:
            sdb.query("SELECT frobnicate(url) FROM t")
        assert excinfo.value.position == 7

    def test_warnings_attach_to_result(self, sdb):
        result = sdb.query("SELECT never_seen FROM t")
        assert [d.code for d in result.diagnostics] == ["SNW201"]
        assert len(result.rows) == 3

    def test_update_unknown_target_still_allowed(self, sdb):
        result = sdb.execute("UPDATE t SET brand_new = 5 WHERE hits > 20")
        assert result.rowcount == 1
        assert sdb.query("SELECT brand_new FROM t WHERE hits > 20").rows == [(5,)]

    def test_analysis_can_be_disabled(self):
        instance = SinewDB("off", SinewConfig(analyze_queries=False))
        instance.create_collection("t")
        instance.load("t", [{"a": 1}])
        result = instance.query("SELECT a FROM t WHERE a = 'text'")
        assert result.diagnostics == ()

    def test_delete_with_warning(self, sdb):
        result = sdb.execute("DELETE FROM t WHERE never_seen = 1")
        assert result.rowcount == 0
        assert [d.code for d in result.diagnostics] == ["SNW201"]
        assert len(sdb.query("SELECT url FROM t").rows) == 3


class TestPredicatePruning:
    def test_pruned_query_is_equivalent_and_cheaper(self, sdb):
        # catalog-provably-NULL predicate: url is 100% text, compared
        # numerically; OR-combined so the query still returns rows
        sql = "SELECT url FROM t WHERE hits > 10 OR url > 5"

        analysis = run(sdb, sql)
        assert [d.code for d in analysis.warnings] == ["SNW202"]

        sdb.db.counters.reset()
        pruned_rows = sorted(sdb.query(sql).rows)
        pruned_udf_calls = sdb.db.counters.udf_calls

        sdb.config.analyze_queries = False
        try:
            sdb.db.counters.reset()
            unpruned_rows = sorted(sdb.query(sql).rows)
            unpruned_udf_calls = sdb.db.counters.udf_calls
        finally:
            sdb.config.analyze_queries = True

        assert pruned_rows == unpruned_rows
        assert pruned_rows == [("a.com",), ("c.com",)]
        assert pruned_udf_calls < unpruned_udf_calls

    def test_pruning_exact_under_negation(self, sdb):
        # NOT(NULL) is NULL: rows where the comparison is NULL stay
        # excluded either way
        sql = "SELECT url FROM t WHERE NOT (url > 5)"
        assert sdb.query(sql).rows == []

    def test_unknown_key_comparison_pruned(self, sdb):
        sql = "SELECT url FROM t WHERE never_seen = 3"
        analysis = run(sdb, sql)
        assert len(analysis.null_predicates) == 1
        assert sdb.query(sql).rows == []


class TestRendering:
    def test_caret_underline(self, sdb):
        sql = "SELECT frobnicate(url) FROM t"
        result = run(sdb, sql)
        rendered = render_diagnostic(result.errors[0], sql)
        lines = rendered.splitlines()
        assert lines[1].strip() == sql
        assert lines[2].strip() == "^" * len("frobnicate(url)")

    def test_severity_accessors(self, sdb):
        result = run(sdb, "SELECT never_seen FROM t")
        (diagnostic,) = result.diagnostics
        assert diagnostic.severity is Severity.WARNING
        assert diagnostic.is_warning and not diagnostic.is_error
