"""Service load harness: N concurrent clients against one live SinewDB.

Boots one durable Sinew instance with the materializer daemon *and* the
background checkpointer running, serves it through
:class:`~repro.service.server.SinewService`, then opens ``--clients``
(default 200) concurrent asyncio connections.  Each client runs a mixed
read/write script: bulk-loads documents tagged with its own client id,
issues point and aggregate SELECTs, uses a prepared statement, and
flips a private session setting.  The harness then verifies the three
service-layer contracts the DESIGN.md section 12 acceptance criteria
name:

* **zero cross-session state leaks** -- each session's settings and
  prepared statements are exactly what that client installed, and after
  the run the server reports no residual sessions, no open transactions,
  and no held catalog latch;
* **zero result diffs vs serial replay** -- every client only writes
  documents tagged with its own id, so the final state is
  interleaving-independent; the harness replays the same loads serially
  on a fresh embedded instance and compares the full (tag, seq) multiset
  plus per-tag counts;
* **structured overload behaviour** -- ``busy`` shedding is retried with
  backoff and counted, never surfaced as a hard failure.

Latency per request (p50/p95/p99, per-op and overall) and error counts
land in a bench-gate-style JSON snapshot.

Usage::

    PYTHONPATH=src python benchmarks/run_service_bench.py \
        --clients 200 --output benchmarks/results/SERVICE_BENCH.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import platform
import shutil
import tempfile
import time

from repro.core import SinewDB
from repro.core.sinew import SinewConfig
from repro.service import (
    AsyncServiceClient,
    RetryPolicy,
    ServiceConfig,
    ServiceError,
    SinewService,
)

TABLE = "bench"
#: per-client script shape
LOADS_PER_CLIENT = 2
DOCS_PER_LOAD = 3
SELECTS_PER_CLIENT = 4
#: bounded retry budget for ``busy`` shedding: a well-behaved client
#: retries with growing backoff until a deadline, not a fixed count --
#: under 200-client contention for max_inflight slots, wait time scales
#: with the whole backlog, not with any per-request constant
BUSY_DEADLINE = 60.0
BUSY_BACKOFF_START = 0.01
BUSY_BACKOFF_MAX = 0.2


def client_documents(client_id: int) -> list[list[dict]]:
    """The batches client ``client_id`` loads (deterministic, id-tagged)."""
    batches = []
    seq = 0
    for _ in range(LOADS_PER_CLIENT):
        batch = []
        for _ in range(DOCS_PER_LOAD):
            batch.append(
                {
                    "bench_tag": client_id,
                    "seq": seq,
                    "payload": {"text": f"client-{client_id}-doc-{seq}", "even": seq % 2 == 0},
                }
            )
            seq += 1
        batches.append(batch)
    return batches


class Recorder:
    """Latency samples and error tallies shared by all client tasks."""

    def __init__(self) -> None:
        self.latencies: dict[str, list[float]] = {}
        self.errors: dict[str, int] = {}
        self.busy_retries = 0
        self.isolation_failures: list[str] = []

    def sample(self, op: str, seconds: float) -> None:
        self.latencies.setdefault(op, []).append(seconds)

    def error(self, code: str) -> None:
        self.errors[code] = self.errors.get(code, 0) + 1


async def timed(recorder: Recorder, op: str, coroutine_factory):
    """Run one request with busy-retry, recording latency of the success."""
    deadline = time.perf_counter() + BUSY_DEADLINE
    backoff = BUSY_BACKOFF_START
    while True:
        start = time.perf_counter()
        try:
            result = await coroutine_factory()
        except ServiceError as error:
            if error.code == "busy" and error.retryable and start < deadline:
                recorder.busy_retries += 1
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, BUSY_BACKOFF_MAX)
                continue
            recorder.error(
                "busy_exhausted" if error.code == "busy" else error.code
            )
            raise
        recorder.sample(op, time.perf_counter() - start)
        return result


async def run_client(
    port: int, client_id: int, recorder: Recorder, retries: bool = False
) -> None:
    # the policy's backoff mirrors the bench's own busy-retry loop (and
    # jitter is off), so under overload both client kinds wait out ``busy``
    # shedding on the same schedule -- the measured difference between the
    # two runs is the retry protocol itself (rid stamping, journal
    # bookkeeping, ack piggybacking), not a different queueing discipline
    retry = (
        RetryPolicy(
            max_attempts=10_000,
            deadline=BUSY_DEADLINE,
            backoff_base=BUSY_BACKOFF_START,
            backoff_max=BUSY_BACKOFF_MAX,
            jitter=0.0,
        )
        if retries
        else None
    )
    async with AsyncServiceClient(
        "127.0.0.1", port, retry=retry, seed=client_id
    ) as client:
        # a private session setting: verified back at the end of the
        # script, so any cross-session settings bleed shows up as a diff
        explain = client_id % 2 == 0
        await timed(
            recorder,
            "set",
            lambda: client.request(
                {"op": "set", "key": "explain_analyze", "value": explain}
            ),
        )
        prepared_name = f"count_{client_id}"
        await timed(
            recorder,
            "prepare",
            lambda: client.request(
                {
                    "op": "prepare",
                    "name": prepared_name,
                    "sql": (
                        f'SELECT COUNT(*) FROM {TABLE} '
                        f'WHERE bench_tag = {client_id}'
                    ),
                }
            ),
        )
        for batch in client_documents(client_id):
            await timed(recorder, "load", lambda b=batch: client.load(TABLE, b))
        for index in range(SELECTS_PER_CLIENT):
            if index % 2 == 0:
                sql = (
                    f'SELECT seq, "payload.text" FROM {TABLE} '
                    f"WHERE bench_tag = {client_id}"
                )
            else:
                sql = f"SELECT COUNT(*) FROM {TABLE} WHERE bench_tag = {client_id}"
            await timed(recorder, "query", lambda s=sql: client.query(s))
        count = await timed(
            recorder,
            "execute",
            lambda: client.request({"op": "execute", "name": prepared_name}),
        )
        expected_docs = LOADS_PER_CLIENT * DOCS_PER_LOAD
        got = count["result"]["rows"][0][0]
        if got != expected_docs:
            recorder.isolation_failures.append(
                f"client {client_id}: sees {got} own documents, wrote {expected_docs}"
            )
        session = (await client.request({"op": "session"}))["session"]
        if session["prepared"] != [prepared_name]:
            recorder.isolation_failures.append(
                f"client {client_id}: prepared statements leaked: {session['prepared']}"
            )
        if session["settings"]["explain_analyze"] is not explain:
            recorder.isolation_failures.append(
                f"client {client_id}: settings leaked: {session['settings']}"
            )


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def summarize(samples: list[float]) -> dict:
    return {
        "count": len(samples),
        "p50_ms": percentile(samples, 0.50) * 1000.0,
        "p95_ms": percentile(samples, 0.95) * 1000.0,
        "p99_ms": percentile(samples, 0.99) * 1000.0,
        "max_ms": (max(samples) if samples else 0.0) * 1000.0,
    }


def final_state(sdb: SinewDB) -> dict:
    """Canonical end-state: (tag, seq) multiset + per-tag counts."""
    rows = sdb.query(f"SELECT bench_tag, seq FROM {TABLE}").rows
    pairs = sorted((int(tag), int(seq)) for tag, seq in rows)
    counts: dict[int, int] = {}
    for tag, _ in pairs:
        counts[tag] = counts.get(tag, 0) + 1
    return {"pairs": pairs, "counts": counts, "total": len(pairs)}


def serial_replay(n_clients: int) -> dict:
    """The same workload's writes applied one client at a time."""
    sdb = SinewDB("service-bench-replay")
    try:
        sdb.create_collection(TABLE)
        for client_id in range(n_clients):
            for batch in client_documents(client_id):
                sdb.load(TABLE, batch)
        return final_state(sdb)
    finally:
        sdb.close()


async def drive(
    port: int, n_clients: int, recorder: Recorder, retries: bool = False
) -> float:
    start = time.perf_counter()
    results = await asyncio.gather(
        *(
            run_client(port, client_id, recorder, retries)
            for client_id in range(n_clients)
        ),
        return_exceptions=True,
    )
    wall = time.perf_counter() - start
    for client_id, result in enumerate(results):
        if isinstance(result, BaseException):
            recorder.error("client_failed")
            recorder.isolation_failures.append(
                f"client {client_id}: {type(result).__name__}: {result}"
            )
    return wall


def run_once(args, retries: bool) -> dict:
    """One full bench pass (fresh engine + service); returns the payload."""
    root = args.path or tempfile.mkdtemp(prefix="sinew-service-bench-")
    sdb = SinewDB.open(root, "service-bench", SinewConfig())
    sdb.start_daemon()  # live background materializer during the whole run
    service = SinewService(
        sdb,
        ServiceConfig(
            port=0,
            max_sessions=args.clients + 8,
            max_inflight=args.max_inflight,
            executor_threads=args.executor_threads,
            checkpoint_interval=args.checkpoint,
        ),
    )
    recorder = Recorder()
    try:
        port = service.start_in_thread()
        mode = "retrying clients" if retries else "plain clients"
        print(
            f"== service bench: {args.clients} {mode} against "
            f"127.0.0.1:{port} (daemon + checkpointer live)"
        )
        wall = asyncio.run(drive(port, args.clients, recorder, retries))

        # post-run health: no sessions, txns, or latch holders left behind
        # (close acks precede connection-task cleanup; allow it to drain)
        drain_deadline = time.perf_counter() + 10.0
        while service.sessions and time.perf_counter() < drain_deadline:
            time.sleep(0.02)
        concurrent_state = final_state(sdb)
        status = sdb.status()
        leaks = []
        if service.sessions:
            leaks.append(f"{len(service.sessions)} sessions still registered")
        if sdb.db.txn_manager.active:
            leaks.append(f"{len(sdb.db.txn_manager.active)} open transactions")
        if status["latch"]["holder"] is not None:
            leaks.append(f"catalog latch held by {status['latch']['holder']}")
        if service.write_lock.locked():
            leaks.append("service write latch still held")
        leaks.extend(recorder.isolation_failures)
    finally:
        service.stop_in_thread()
        sdb.close()
        if args.path is None:
            shutil.rmtree(root, ignore_errors=True)

    print("== serial replay")
    replay_state = serial_replay(args.clients)
    replay_match = concurrent_state == replay_state

    all_samples = [s for samples in recorder.latencies.values() for s in samples]
    payload = {
        "schema": 1,
        "python": platform.python_version(),
        "clients": args.clients,
        "retries_enabled": retries,
        "wall_seconds": wall,
        "requests": len(all_samples),
        "throughput_rps": (len(all_samples) / wall) if wall else 0.0,
        "latency": {
            "overall": summarize(all_samples),
            **{op: summarize(samples) for op, samples in sorted(recorder.latencies.items())},
        },
        "errors": dict(sorted(recorder.errors.items())),
        "busy_retries": recorder.busy_retries,
        "service_counters": dict(service.counters),
        "verify": {
            "replay_match": replay_match,
            "documents": concurrent_state["total"],
            "replay_documents": replay_state["total"],
            "leaks": leaks,
        },
    }
    overall = payload["latency"]["overall"]
    print(
        f"{args.clients} clients / {payload['requests']} requests in {wall:.2f}s "
        f"({payload['throughput_rps']:.0f} rps) "
        f"p50={overall['p50_ms']:.1f}ms p99={overall['p99_ms']:.1f}ms "
        f"busy_retries={recorder.busy_retries}"
    )
    failed = False
    if recorder.errors:
        print(f"ERRORS: {payload['errors']}")
        failed = True
    if leaks:
        print("STATE LEAKS:")
        for leak in leaks:
            print(f"  {leak}")
        failed = True
    if not replay_match:
        print(
            f"SERIAL-REPLAY MISMATCH: concurrent {concurrent_state['total']} docs "
            f"(counts {concurrent_state['counts']}) vs replay "
            f"{replay_state['total']} (counts {replay_state['counts']})"
        )
        failed = True
    else:
        print(
            f"serial replay: {replay_state['total']} documents, "
            f"{args.clients} tags -- identical"
        )
    payload["failed"] = failed
    return payload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=200)
    parser.add_argument(
        "--output",
        default="benchmarks/results/SERVICE_BENCH.json",
        help="where to write the snapshot JSON",
    )
    parser.add_argument(
        "--path", default=None, help="durable root (default: fresh temp dir)"
    )
    parser.add_argument("--max-inflight", type=int, default=16)
    parser.add_argument("--executor-threads", type=int, default=8)
    parser.add_argument(
        "--checkpoint", type=float, default=0.5, help="checkpointer cadence (s)"
    )
    parser.add_argument(
        "--retries",
        action="store_true",
        help=(
            "run twice -- plain clients, then clients with the idempotent "
            "retry protocol enabled -- and assert the no-fault overhead of "
            "rid stamping + journaling stays within the bench-gate tolerance"
        ),
    )
    args = parser.parse_args()

    if not args.retries:
        payload = run_once(args, retries=False)
    else:
        baseline = run_once(args, retries=False)
        payload = run_once(args, retries=True)
        tolerance = float(os.environ.get("BENCH_GATE_TOLERANCE", "0.25"))
        # overhead is asserted on throughput, not per-request percentiles:
        # the plain run's busy waits happen *between* latency samples
        # (timed() restarts its clock on each retry) while the retrying
        # client absorbs them *inside* one sample, so percentiles bracket
        # different things under overload -- end-to-end wall clock counts
        # both runs' waiting identically
        base_rps = baseline["throughput_rps"]
        retry_rps = payload["throughput_rps"]
        ratio = (base_rps / retry_rps) if retry_rps else float("inf")
        within = ratio <= 1.0 + tolerance
        payload["retry_overhead"] = {
            "baseline_rps": base_rps,
            "retries_rps": retry_rps,
            "slowdown_ratio": ratio,
            "baseline_p50_ms": baseline["latency"]["overall"]["p50_ms"],
            "retries_p50_ms": payload["latency"]["overall"]["p50_ms"],
            "baseline_p99_ms": baseline["latency"]["overall"]["p99_ms"],
            "retries_p99_ms": payload["latency"]["overall"]["p99_ms"],
            "tolerance": tolerance,
            "within_tolerance": within,
        }
        payload["baseline"] = {
            "latency": baseline["latency"],
            "throughput_rps": baseline["throughput_rps"],
            "wall_seconds": baseline["wall_seconds"],
        }
        print(
            f"retry overhead: {base_rps:.0f} rps -> {retry_rps:.0f} rps "
            f"(x{ratio:.3f} slowdown, tolerance x{1.0 + tolerance:.2f})"
        )
        if not within:
            print("RETRY OVERHEAD EXCEEDS BENCH-GATE TOLERANCE")
            payload["failed"] = True
        if baseline["failed"]:
            payload["failed"] = True

    failed = payload.pop("failed")
    output = pathlib.Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
