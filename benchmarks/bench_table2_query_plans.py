"""Paper Table 2: the effect of virtual columns on query plans.

Builds two Sinew instances over the same synthetic Twitter dataset -- one
all-virtual, one with the Table 2 attributes materialized (and ANALYZEd) --
and records the plans the optimizer chooses for the four Table 1 queries.
The reproduced effects:

* T1 (DISTINCT): HashAggregate under the fixed 200-row virtual estimate,
  Sort+Unique once real statistics exist;
* T2 (GROUP BY): 200-group hash plan vs. a statistics-driven strategy;
* T3/T4 (joins): cardinality estimates and join trees change.

The timing benchmarks measure T1/T2 execution in both conditions -- the
paper reports an order-of-magnitude gap on the self-join; at this scale
the physical condition must at least be decisively faster.
"""

from __future__ import annotations

import os

import pytest

from repro.core import SinewDB
from repro.rdbms.types import type_from_name
from repro.workloads import (
    TABLE1_QUERIES,
    TABLE2_PHYSICAL_ATTRIBUTES,
    TwitterGenerator,
)

from conftest import write_report

N_TWEETS = max(500, int(8000 * float(os.environ.get("REPRO_SCALE", "1.0"))))


def build_sinew(materialize: bool) -> SinewDB:
    generator = TwitterGenerator(N_TWEETS)
    sdb = SinewDB("table2_physical" if materialize else "table2_virtual")
    sdb.create_collection("tweets")
    sdb.create_collection("deletes")
    sdb.load("tweets", generator.tweets())
    sdb.load("deletes", generator.deletes(N_TWEETS // 3))
    if materialize:
        for key, type_name in TABLE2_PHYSICAL_ATTRIBUTES:
            table = "deletes" if key.startswith("delete.") else "tweets"
            sdb.materialize(table, key, type_from_name(type_name))
        sdb.run_materializer("tweets")
        sdb.run_materializer("deletes")
    sdb.analyze()
    return sdb


@pytest.fixture(scope="module")
def systems():
    return {"virtual": build_sinew(False), "physical": build_sinew(True)}


@pytest.fixture(scope="module", autouse=True)
def report(systems):
    """Write the Table 2 artifact: both plans for every Table 1 query."""
    lines = [f"Table 2 reproduction -- query plans, {N_TWEETS} tweets", ""]
    for query_id, sql in TABLE1_QUERIES.items():
        lines.append(f"## {query_id}: {sql}")
        for condition in ("virtual", "physical"):
            lines.append(f"-- with {condition} columns:")
            lines.append(systems[condition].explain(sql))
        lines.append("")
    # headline assertions of the reproduction
    virtual_t1 = systems["virtual"].explain(TABLE1_QUERIES["T1"]).splitlines()[0]
    physical_t1 = systems["physical"].explain(TABLE1_QUERIES["T1"]).splitlines()[0]
    lines.append(f"T1 top operator: virtual={virtual_t1!r} physical={physical_t1!r}")
    write_report("table2_query_plans", "\n".join(lines))
    yield


def test_t1_plan_flip(systems):
    assert "HashAggregate" in systems["virtual"].explain(TABLE1_QUERIES["T1"])
    assert "Unique" in systems["physical"].explain(TABLE1_QUERIES["T1"]).splitlines()[0]


@pytest.mark.parametrize("query_id", ["T1", "T2"])
@pytest.mark.parametrize("condition", ["virtual", "physical"])
def test_table2_query_timing(benchmark, systems, query_id, condition):
    sdb = systems[condition]
    sql = TABLE1_QUERIES[query_id]
    benchmark.group = f"table2-{query_id}"
    benchmark.pedantic(lambda: sdb.query(sql), rounds=3, iterations=1, warmup_rounds=1)


def test_table2_t3_join_timing(benchmark, systems):
    """The join query where the paper saw 50 min -> 4 min from
    materialization."""
    sql = TABLE1_QUERIES["T3"]
    benchmark.group = "table2-T3"
    benchmark.pedantic(
        lambda: systems["physical"].query(sql), rounds=2, iterations=1
    )
