"""Ablation for paper section 3.1.4: the cost of querying *dirty* columns.

While the materializer is mid-move, every reference to the moving column
is rewritten to ``COALESCE(physical, extract(...))``.  The paper measured
"a maximum slowdown of 10% for queries that access columns that must be
coalesced" and no slowdown at all for disk-bound workloads.

This bench measures the same query against the same table in three
states -- fully virtual, dirty (half materialized), and fully physical --
and reports the dirty-state overhead relative to both endpoints.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import SinewDB
from repro.harness import format_table
from repro.nobench import NoBenchGenerator
from repro.rdbms.types import SqlType

from conftest import read_json, write_json, write_report

N_RECORDS = max(500, int(6000 * float(os.environ.get("REPRO_SCALE", "1.0"))))

QUERY = "SELECT count(*) FROM nobench_main WHERE str1 IS NOT NULL"
POINT_QUERY_TEMPLATE = "SELECT num FROM nobench_main WHERE str1 = '{value}'"


def build(state: str) -> SinewDB:
    sdb = SinewDB(f"dirty_{state}")
    sdb.create_collection("nobench_main")
    sdb.load("nobench_main", NoBenchGenerator(N_RECORDS).documents())
    if state in ("dirty", "physical"):
        sdb.materialize("nobench_main", "str1", SqlType.TEXT)
        if state == "dirty":
            sdb.materializer_step("nobench_main", max_rows=N_RECORDS // 2)
        else:
            sdb.run_materializer("nobench_main")
    sdb.analyze()
    return sdb


@pytest.fixture(scope="module")
def systems():
    return {state: build(state) for state in ("virtual", "dirty", "physical")}


def _best(fn, repeats: int = 3) -> float:
    fn()  # warm
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module", autouse=True)
def report(systems):
    times = {
        state: _best(lambda sdb=sdb: sdb.query(QUERY))
        for state, sdb in systems.items()
    }
    slowdown_vs_physical = (times["dirty"] - times["physical"]) / times["physical"]
    rows = [
        [state, f"{seconds:.4f}"] for state, seconds in times.items()
    ]
    rows.append(["dirty vs physical", f"{slowdown_vs_physical * 100:+.1f}%"])
    extraction = {}
    for state, sdb in systems.items():
        extraction[state] = {
            "cached": dict(sdb.query(QUERY).exec_stats),
            "uncached": dict(
                sdb.query(QUERY, use_extraction_cache=False).exec_stats
            ),
        }
    write_json(
        "dirty_coalesce",
        {
            "n_records": N_RECORDS,
            "sql": QUERY,
            "seconds": times,
            "extraction": extraction,
        },
    )
    write_report(
        "dirty_coalesce",
        format_table(
            ["column state", "query time (s)"],
            rows,
            title=(
                "Section 3.1.4 ablation -- COALESCE overhead on a dirty "
                f"column, {N_RECORDS} records"
            ),
        ),
    )
    yield


def test_dirty_results_correct(systems):
    counts = {
        state: sdb.query(QUERY).scalar() for state, sdb in systems.items()
    }
    assert counts["virtual"] == counts["dirty"] == counts["physical"] == N_RECORDS


def test_counters_emitted_in_json(report):
    payload = read_json("dirty_coalesce")
    for state in ("virtual", "dirty", "physical"):
        for side in ("cached", "uncached"):
            stats = payload["extraction"][state][side]
            for counter in ("header_decodes", "header_cache_hits", "udf_calls"):
                assert counter in stats
    # the physical state never touches the reservoir for this query
    assert payload["extraction"]["physical"]["cached"]["header_decodes"] == 0
    # the dirty state must extract for the unmoved half, on either path
    assert payload["extraction"]["dirty"]["cached"]["udf_calls"] > 0


def test_dirty_between_endpoints(systems):
    """The dirty plan does strictly less extraction work than all-virtual."""
    plan = systems["dirty"].explain(QUERY)
    assert "COALESCE" in plan


@pytest.mark.parametrize("state", ["virtual", "dirty", "physical"])
def test_dirty_coalesce_timing(benchmark, systems, state):
    sdb = systems[state]
    benchmark.group = "dirty-coalesce"
    benchmark.pedantic(lambda: sdb.query(QUERY), rounds=3, iterations=1, warmup_rounds=1)
