"""Bench gate checker: compare a fresh snapshot against the baseline.

Reads the schema-2 snapshot written by :mod:`run_bench_gate` and the
committed ``benchmarks/baseline.json`` and fails (exit 1) when the
engine regressed:

* **Counters are exact.**  Extraction counters (header/subdoc decodes
  and cache hits, UDF calls) and result cardinalities are deterministic
  functions of the dataset, plan, and lane; any difference from the
  baseline is a behaviour change, not noise.
* **Wall time is compared after speed calibration.**  CI runners and dev
  machines differ in raw speed, so per-query snapshot/baseline ratios are
  first divided by the run's *median* ratio (the machine-speed factor);
  a query whose calibrated ratio exceeds ``1 + BENCH_GATE_TOLERANCE``
  (default 0.25, i.e. +25% over the rest of the run) flags a regression
  that machine speed cannot explain.  Queries under
  ``BENCH_GATE_MIN_WALL`` seconds in the baseline (default 2ms) are
  ignored -- at bench-gate scale their timings are timer noise.
* **Speedup is required by default.**  The process lane must beat the
  serial lane by ``BENCH_GATE_MIN_SPEEDUP`` (default 1.5x) on at least
  ``BENCH_GATE_MIN_SPEEDUP_QUERIES`` (default 3) of the Figure 6
  queries.  Set ``BENCH_GATE_REQUIRE_SPEEDUP=0`` to make it advisory.
  The requirement automatically downgrades to advisory when the snapshot
  was taken on fewer than two effective CPUs -- a single-core machine
  cannot exhibit parallel speedup no matter how good the executor is.

Usage::

    python benchmarks/check_bench_gate.py \
        --snapshot benchmarks/results/BENCH_PR10.json \
        --baseline benchmarks/baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import sys


def _iter_entries(config: dict):
    """Yield (label, entry) for every measured query in one lane."""
    for query_id, entry in config["fig6"]["queries"].items():
        yield f"fig6/{query_id}", entry
    if "tableB" in config:
        for query_id, conditions in config["tableB"]["queries"].items():
            for condition, entry in conditions.items():
                yield f"tableB/{query_id}/{condition}", entry


def compare(
    snapshot: dict, baseline: dict, tolerance: float, min_wall: float
) -> list[str]:
    problems: list[str] = []
    if snapshot.get("repro_scale") != baseline.get("repro_scale"):
        problems.append(
            f"scale mismatch: snapshot REPRO_SCALE={snapshot.get('repro_scale')} "
            f"vs baseline {baseline.get('repro_scale')} -- rebuild the baseline"
        )
        return problems
    if snapshot.get("schema") != baseline.get("schema"):
        problems.append(
            f"schema mismatch: snapshot {snapshot.get('schema')} vs "
            f"baseline {baseline.get('schema')} -- rebuild the baseline"
        )
        return problems

    for lane, base_config in baseline["lanes"].items():
        snap_config = snapshot["lanes"].get(lane)
        if snap_config is None:
            problems.append(f"snapshot missing lane={lane} run")
            continue

        base_entries = dict(_iter_entries(base_config))
        snap_entries = dict(_iter_entries(snap_config))
        for label, base_entry in base_entries.items():
            snap_entry = snap_entries.get(label)
            if snap_entry is None:
                problems.append(f"lane={lane} {label}: missing from snapshot")
                continue
            if snap_entry["rows"] != base_entry["rows"]:
                problems.append(
                    f"lane={lane} {label}: rows {snap_entry['rows']} "
                    f"!= baseline {base_entry['rows']}"
                )
            if snap_entry["counters"] != base_entry["counters"]:
                problems.append(
                    f"lane={lane} {label}: counters diverge from "
                    f"baseline: {snap_entry['counters']} != {base_entry['counters']}"
                )

        # Speed calibration: per-query snapshot/baseline ratios, divided by
        # the benchmark group's median ratio, so a uniformly faster/slower
        # machine -- or sustained contention across one group's measurement
        # phase -- cancels out; only a query slower *relative to its group*
        # flags.  Groups are calibrated separately because each benchmark
        # is measured as its own phase.
        groups: dict[str, dict[str, float]] = {}
        for label, base_entry in base_entries.items():
            if label not in snap_entries:
                continue
            if not min_wall <= base_entry["wall_seconds"]:
                continue
            group = label.split("/", 1)[0]
            groups.setdefault(group, {})[label] = (
                snap_entries[label]["wall_seconds"] / base_entry["wall_seconds"]
            )
        for group, ratios in sorted(groups.items()):
            if len(ratios) < 3:
                continue  # too few measurable queries for a stable median
            calibration = statistics.median(ratios.values())
            for label, ratio in sorted(ratios.items()):
                calibrated = ratio / calibration if calibration else 0.0
                if calibrated > 1.0 + tolerance:
                    problems.append(
                        f"lane={lane} {label}: wall {calibrated:.2f}x "
                        f"the calibrated baseline (> +{tolerance:.0%} "
                        f"tolerance; raw ratio {ratio:.2f}x, machine factor "
                        f"{calibration:.2f}x)"
                    )
    return problems


def check_speedup(snapshot: dict) -> list[str]:
    """The speedup gate: process lane must actually beat serial.

    Returns problems (possibly empty).  Advisory-only when
    ``BENCH_GATE_REQUIRE_SPEEDUP=0`` or the snapshot ran on < 2 CPUs.
    """
    total_speedup = snapshot.get("fig6_speedup", 0.0)
    per_query = snapshot.get("fig6_per_query_speedup", {})
    cpus = int(snapshot.get("effective_cpu_count", 1))
    floor = float(os.environ.get("BENCH_GATE_MIN_SPEEDUP", "1.5"))
    need = int(os.environ.get("BENCH_GATE_MIN_SPEEDUP_QUERIES", "3"))
    fast_enough = sorted(
        query_id
        for query_id, speedup in per_query.items()
        if speedup >= floor
    )

    print(f"fig6 serial/process speedup: {total_speedup:.2f}x on {cpus} cpus")
    print(
        f"queries at >= {floor:.2f}x: {len(fast_enough)}/{len(per_query)} "
        f"(need {need}): {', '.join(fast_enough) or 'none'}"
    )

    if os.environ.get("BENCH_GATE_REQUIRE_SPEEDUP", "1") != "1":
        print("speedup requirement disabled (BENCH_GATE_REQUIRE_SPEEDUP!=1)")
        return []
    if cpus < 2:
        print(
            f"WARNING: snapshot taken on {cpus} effective cpu(s); parallel "
            "speedup is unmeasurable there -- requirement downgraded to "
            "advisory"
        )
        return []
    if len(fast_enough) < need:
        return [
            f"process lane reached >= {floor:.2f}x over serial on only "
            f"{len(fast_enough)} of {len(per_query)} fig6 queries "
            f"(need {need}); per-query: "
            + ", ".join(
                f"{query_id}={speedup:.2f}x"
                for query_id, speedup in sorted(per_query.items())
            )
        ]
    return []


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--snapshot", default="benchmarks/results/BENCH_PR10.json")
    parser.add_argument("--baseline", default="benchmarks/baseline.json")
    args = parser.parse_args()

    snapshot = json.loads(pathlib.Path(args.snapshot).read_text())
    baseline = json.loads(pathlib.Path(args.baseline).read_text())
    tolerance = float(os.environ.get("BENCH_GATE_TOLERANCE", "0.25"))
    min_wall = float(os.environ.get("BENCH_GATE_MIN_WALL", "0.002"))

    problems = compare(snapshot, baseline, tolerance, min_wall)
    problems.extend(check_speedup(snapshot))

    if problems:
        print("BENCH GATE FAILED:")
        for line in problems:
            print(f"  {line}")
        return 1
    print(f"bench gate passed (tolerance +-{tolerance:.0%}, counters exact)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
