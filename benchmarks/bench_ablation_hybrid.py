"""Ablation for paper section 3.1.1: all-virtual vs. hybrid vs. wide-physical.

The hybrid schema is Sinew's central design decision.  This bench compares
three layouts of the same NoBench data:

* **all-virtual** -- the single-reservoir extreme: most compact, but every
  predicate is an opaque UDF with the fixed 200-row estimate;
* **hybrid** -- the analyzer's policy (the paper's choice);
* **wide-physical** -- every top-level attribute gets a physical column
  (the sparse 1000-key pool included), showing the storage bloat of
  pre-allocated attribute tracking on sparse data.

Reported: storage bytes, per-tuple header overhead, and the Q6/Q10 query
times + plans under each layout.
"""

from __future__ import annotations

import os

import pytest

from repro.core import SinewDB
from repro.core.schema_analyzer import MaterializationPolicy
from repro.core.sinew import SinewConfig
from repro.harness import format_table
from repro.nobench import NoBenchGenerator
from repro.rdbms.database import DatabaseConfig
from repro.rdbms.types import NullStorageModel

from conftest import write_report

# the wide-physical build materializes 1000+ sparse columns, so this
# ablation runs at half the usual scale
N_RECORDS = max(400, int(2000 * float(os.environ.get("REPRO_SCALE", "1.0"))))


def build(layout: str, null_model: NullStorageModel = NullStorageModel.BITMAP) -> SinewDB:
    if layout == "wide-physical":
        # thresholds low enough that *everything* top-level materializes
        policy = MaterializationPolicy(density_threshold=0.0, cardinality_threshold=0)
    else:
        policy = MaterializationPolicy()
    sdb = SinewDB(
        f"hybrid_{layout}_{null_model.value}",
        SinewConfig(database=DatabaseConfig(null_model=null_model), policy=policy),
    )
    sdb.create_collection("nobench_main")
    sdb.load("nobench_main", NoBenchGenerator(N_RECORDS).documents())
    if layout != "all-virtual":
        sdb.settle("nobench_main")
    sdb.analyze()
    return sdb


@pytest.fixture(scope="module")
def systems():
    return {
        "all-virtual": build("all-virtual"),
        "hybrid": build("hybrid"),
        "wide-physical": build("wide-physical"),
    }


@pytest.fixture(scope="module")
def innodb_wide():
    return build("wide-physical", NullStorageModel.PER_ATTRIBUTE)


def queries(n: int) -> dict[str, str]:
    return {
        "q6-range": (
            f"SELECT _id FROM nobench_main WHERE num BETWEEN {n // 3} "
            f"AND {n // 3 + max(1, n // 1000)}"
        ),
        "q10-agg": (
            "SELECT thousandth, count(*) FROM nobench_main "
            f"WHERE num BETWEEN {n // 5} AND {n // 5 + n // 10} GROUP BY thousandth"
        ),
    }


@pytest.fixture(scope="module", autouse=True)
def report(systems, innodb_wide):
    import time

    rows = []
    for layout, sdb in systems.items():
        table = sdb.db.table("nobench_main")
        times = {}
        for label, sql in queries(N_RECORDS).items():
            sdb.query(sql)
            start = time.perf_counter()
            sdb.query(sql)
            times[label] = time.perf_counter() - start
        rows.append(
            [
                layout,
                len(table.schema),
                f"{table.total_bytes / 1e6:.2f}",
                f"{times['q6-range']:.4f}",
                f"{times['q10-agg']:.4f}",
            ]
        )
    # the InnoDB-style wide table, to show the per-attribute header bloat
    table = innodb_wide.db.table("nobench_main")
    rows.append(
        [
            "wide-physical (2B/attr headers)",
            len(table.schema),
            f"{table.total_bytes / 1e6:.2f}",
            "-",
            "-",
        ]
    )
    write_report(
        "ablation_hybrid",
        format_table(
            ["layout", "physical columns", "size (MB)", "Q6 (s)", "Q10 (s)"],
            rows,
            title=(
                "Section 3.1.1 ablation -- storage layout extremes, "
                f"{N_RECORDS} records"
            ),
        ),
    )
    yield


def test_wide_physical_bloats_on_sparse_data(systems, innodb_wide):
    hybrid = systems["hybrid"].db.table("nobench_main").total_bytes
    wide = systems["wide-physical"].db.table("nobench_main").total_bytes
    assert wide > hybrid  # pre-allocated sparse columns cost real bytes

    innodb_bytes = innodb_wide.db.table("nobench_main").total_bytes
    assert innodb_bytes > wide  # 2 bytes/attribute dwarfs the bitmap


def test_hybrid_estimates_beat_all_virtual(systems):
    sql = queries(N_RECORDS)["q6-range"]
    virtual_plan = systems["all-virtual"].explain(sql)
    hybrid_plan = systems["hybrid"].explain(sql)
    assert "rows=200" in virtual_plan  # the fixed UDF default
    assert "rows=200" not in hybrid_plan.splitlines()[1]


@pytest.mark.parametrize("layout", ["all-virtual", "hybrid", "wide-physical"])
@pytest.mark.parametrize("query_label", ["q6-range", "q10-agg"])
def test_hybrid_layout_query(benchmark, systems, layout, query_label):
    sdb = systems[layout]
    sql = queries(N_RECORDS)[query_label]
    benchmark.group = f"hybrid-{query_label}"
    benchmark.pedantic(lambda: sdb.query(sql), rounds=2, iterations=1, warmup_rounds=1)
