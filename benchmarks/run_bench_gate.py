"""Bench gate runner: measure the Sinew engine across executor lanes.

Runs the Figure 6 NoBench queries (q1-q10) and the Appendix B virtual-
overhead workload at the current ``REPRO_SCALE`` once per executor lane
-- ``serial`` (workers=1), ``thread`` (workers=4, GIL-bound), and
``process`` (workers=4, true CPU parallelism) -- and writes a
machine-readable snapshot (wall seconds + extraction counters + result
cardinalities + per-query process-lane speedups) for
:mod:`check_bench_gate` to compare against the committed
``benchmarks/baseline.json``.

The script also enforces the executor's serial-equivalence contract
directly: for every query, every lane must report the *same* result
cardinality, the same UDF-call count, and the same extraction *access*
totals as the serial run (a morsel must never need a header more or
fewer times than the serial pipeline does).

Usage::

    PYTHONPATH=src REPRO_SCALE=1.0 python benchmarks/run_bench_gate.py \
        --output benchmarks/results/BENCH_PR10.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import time

from repro.core import SinewDB
from repro.core.sinew import SinewConfig
from repro.harness import small_scale
from repro.nobench.generator import NoBenchGenerator
from repro.nobench.queries import SinewNoBench
from repro.rdbms.database import DatabaseConfig
from repro.rdbms.executor import effective_cpu_count
from repro.workloads import APPENDIX_B_QUERIES, TwitterGenerator

FIG6_QUERIES = ["q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9", "q10"]
#: (lane, parallel_workers) per measured configuration.  The serial lane
#: is the correctness and speedup reference; the thread lane documents
#: the GIL ceiling; the process lane is the one the speedup gate judges.
LANE_CONFIGS = (("serial", 1), ("thread", 4), ("process", 4))
#: lanes that also run the Appendix B workload (tableB measures virtual
#: vs physical column overhead, which is lane-independent -- two lanes
#: are enough to show the contract holds off the thread lane too)
TABLEB_LANES = ("serial", "process")
REPEATS = 5

#: counters that must be bit-identical between runs of the same lane
EXACT_COUNTERS = (
    "header_decodes",
    "header_cache_hits",
    "subdoc_decodes",
    "subdoc_cache_hits",
    "udf_calls",
)

N_TWEETS = max(500, int(6000 * float(os.environ.get("REPRO_SCALE", "1.0"))))


def _measure_all(workload: dict[str, tuple[SinewDB, str]]) -> dict[str, dict]:
    """Counters from one warm run each, then interleaved best-of-N timing.

    Timing passes iterate over the *whole* workload before repeating, so a
    transient CPU-contention burst slows one pass of every query (which
    the per-query minimum discards) instead of every repeat of one query
    (which would skew its minimum).
    """
    results = {}
    for label, (sdb, sql) in workload.items():
        warm = sdb.query(sql)
        results[label] = {
            "rows": len(warm.rows),
            "wall_seconds": float("inf"),
            "counters": {
                name: warm.exec_stats.get(name, 0) for name in EXACT_COUNTERS
            },
        }
    for _ in range(REPEATS):
        for label, (sdb, sql) in workload.items():
            start = time.perf_counter()
            sdb.query(sql)
            elapsed = time.perf_counter() - start
            if elapsed < results[label]["wall_seconds"]:
                results[label]["wall_seconds"] = elapsed
    return results


def run_fig6(lane: str, workers: int) -> dict:
    scale = small_scale()
    generator = NoBenchGenerator(scale.n_records)
    adapter = SinewNoBench(
        generator.params(),
        SinewConfig(
            database=scale.database_config(
                parallel_workers=workers, executor_lane=lane
            )
        ),
    )
    adapter.load(list(generator.documents()))
    adapter.prepare()
    queries = _measure_all(
        {
            query_id: (adapter.sdb, adapter.sql_for(query_id))
            for query_id in FIG6_QUERIES
        }
    )
    executor = adapter.sdb.status()["executor"]
    adapter.sdb.close()
    return {
        "n_records": scale.n_records,
        "workers": workers,
        "queries": queries,
        "executor": executor,
    }


def run_tableb(lane: str, workers: int) -> dict:
    def build(materialize: bool) -> SinewDB:
        name = f"gate_tableB_{'phys' if materialize else 'virt'}_{lane}"
        sdb = SinewDB(
            name,
            SinewConfig(
                database=DatabaseConfig(
                    parallel_workers=workers, executor_lane=lane
                )
            ),
        )
        sdb.create_collection("tweets")
        sdb.load("tweets", TwitterGenerator(N_TWEETS).tweets())
        if materialize:
            from repro.rdbms.types import SqlType

            for key, sql_type in (
                ("user.id", SqlType.INTEGER),
                ("user.lang", SqlType.TEXT),
                ("user.friends_count", SqlType.INTEGER),
                ("id_str", SqlType.TEXT),
            ):
                sdb.materialize("tweets", key, sql_type)
            sdb.run_materializer("tweets")
        sdb.analyze()
        return sdb

    systems = {"virtual": build(False), "physical": build(True)}
    flat = _measure_all(
        {
            f"{query_id}/{condition}": (sdb, sql)
            for query_id, sql in APPENDIX_B_QUERIES.items()
            for condition, sdb in systems.items()
        }
    )
    queries: dict = {}
    for query_id in APPENDIX_B_QUERIES:
        queries[query_id] = {
            condition: flat[f"{query_id}/{condition}"]
            for condition in systems
        }
    for sdb in systems.values():
        sdb.close()
    return {"n_tweets": N_TWEETS, "workers": workers, "queries": queries}


def access_signature(entry: dict) -> dict:
    """Cross-lane extraction invariant: how often data was *needed*.

    Raw decode/hit splits may legitimately differ by lane (the serial
    pipeline can hit entries a later operator left in the query cache;
    per-morsel worker contexts have their own caches and capacities), but
    the sum of decodes and hits -- how many times a header or sub-document
    was accessed -- is plan-determined and must match exactly.
    """
    counters = entry["counters"]
    return {
        "udf_calls": counters["udf_calls"],
        "header_accesses": counters["header_decodes"]
        + counters["header_cache_hits"],
        "subdoc_accesses": counters["subdoc_decodes"]
        + counters["subdoc_cache_hits"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default="benchmarks/results/BENCH_PR10.json",
        help="where to write the snapshot JSON",
    )
    args = parser.parse_args()

    payload: dict = {
        "schema": 2,
        "repro_scale": float(os.environ.get("REPRO_SCALE", "1.0")),
        "python": platform.python_version(),
        "effective_cpu_count": effective_cpu_count(),
        "lanes": {},
    }
    for lane, workers in LANE_CONFIGS:
        print(f"== bench gate: lane={lane} workers={workers}")
        entry = {"workers": workers, "fig6": run_fig6(lane, workers)}
        if lane in TABLEB_LANES:
            entry["tableB"] = run_tableb(lane, workers)
        payload["lanes"][lane] = entry

    # Serial-equivalence contract: rows, UDF calls, and extraction access
    # totals identical across lanes, query by query.
    mismatches = []
    serial = payload["lanes"]["serial"]
    for lane, _workers in LANE_CONFIGS[1:]:
        lane_payload = payload["lanes"][lane]
        for bench in ("fig6", "tableB"):
            if bench not in lane_payload or bench not in serial:
                continue
            for query_id, serial_entry in serial[bench]["queries"].items():
                lane_entry = lane_payload[bench]["queries"][query_id]
                pairs = (
                    [(serial_entry, lane_entry)]
                    if bench == "fig6"
                    else [
                        (serial_entry[c], lane_entry[c])
                        for c in ("virtual", "physical")
                    ]
                )
                for left, right in pairs:
                    if left["rows"] != right["rows"]:
                        mismatches.append(
                            f"{bench}/{query_id}: rows {left['rows']} (serial) "
                            f"!= {right['rows']} (lane={lane})"
                        )
                    if access_signature(left) != access_signature(right):
                        mismatches.append(
                            f"{bench}/{query_id}: extraction accesses diverge "
                            f"at lane={lane}: {access_signature(left)} "
                            f"!= {access_signature(right)}"
                        )

    def total(lane: str) -> float:
        return sum(
            entry["wall_seconds"]
            for entry in payload["lanes"][lane]["fig6"]["queries"].values()
        )

    payload["fig6_total_seconds"] = {
        lane: total(lane) for lane, _ in LANE_CONFIGS
    }
    serial_queries = serial["fig6"]["queries"]
    process_queries = payload["lanes"]["process"]["fig6"]["queries"]
    payload["fig6_per_query_speedup"] = {
        query_id: (
            serial_queries[query_id]["wall_seconds"]
            / process_queries[query_id]["wall_seconds"]
            if process_queries[query_id]["wall_seconds"]
            else 0.0
        )
        for query_id in FIG6_QUERIES
    }
    serial_total = payload["fig6_total_seconds"]["serial"]
    process_total = payload["fig6_total_seconds"]["process"]
    payload["fig6_speedup"] = (
        serial_total / process_total if process_total else 0.0
    )

    output = pathlib.Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    print(
        "fig6 totals: "
        + " ".join(
            f"{lane}={payload['fig6_total_seconds'][lane]:.3f}s"
            for lane, _ in LANE_CONFIGS
        )
        + f" (process speedup {payload['fig6_speedup']:.2f}x "
        f"on {payload['effective_cpu_count']} cpus)"
    )
    if mismatches:
        print("SERIAL-EQUIVALENCE FAILURES:")
        for line in mismatches:
            print(f"  {line}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
