"""Paper Table 3: load time and storage size for all four systems at both
scales.

Expected shape (paper section 6.2):

* **load time**: Postgres-JSON fastest (syntax validation only); MongoDB
  and Sinew pay one serialization pass; EAV slowest (20+ tuples/record);
* **size**: Sinew smallest (dictionary-encoded keys in the reservoir);
  Postgres-JSON roughly the input size; MongoDB at or above the input
  (BSON type bloat); EAV about twice the input or more.
"""

from __future__ import annotations

import json

import pytest

from repro.harness import build_systems, format_table, large_scale, small_scale
from repro.nobench import (
    EavNoBench,
    MongoNoBench,
    NoBenchGenerator,
    PgJsonNoBench,
    SinewNoBench,
)

from conftest import write_report


def original_bytes(documents) -> int:
    return sum(
        len(json.dumps(doc, separators=(",", ":")).encode()) for doc in documents
    )


@pytest.fixture(scope="module", autouse=True)
def report():
    sections = []
    for scale in (small_scale(), large_scale()):
        generator = NoBenchGenerator(scale.n_records)
        documents = list(generator.documents())
        runs, _params = build_systems(scale, generator)
        rows = []
        for run in runs:
            rows.append(
                [
                    run.name,
                    f"{run.load_measurement.wall_seconds:.2f}",
                    f"{run.adapter.storage_bytes() / 1e6:.2f}",
                ]
            )
        rows.append(["Original (JSON)", "-", f"{original_bytes(documents) / 1e6:.2f}"])
        sections.append(
            format_table(
                ["System", "Load (s)", "Size (MB)"],
                rows,
                title=f"Table 3 reproduction -- {scale.name}, "
                f"{scale.n_records} records",
            )
        )
    write_report("table3_load_and_size", "\n\n".join(sections))
    yield


@pytest.fixture(scope="module")
def corpus():
    generator = NoBenchGenerator(small_scale().n_records)
    return list(generator.documents()), generator.params()


@pytest.mark.parametrize(
    "system", ["Sinew", "MongoDB", "EAV", "PG JSON"]
)
def test_load_time(benchmark, corpus, system):
    documents, params = corpus
    benchmark.group = "table3-load"

    def load_fresh():
        if system == "Sinew":
            adapter = SinewNoBench(params)
        elif system == "MongoDB":
            adapter = MongoNoBench(params)
        elif system == "EAV":
            adapter = EavNoBench(params)
        else:
            adapter = PgJsonNoBench(params)
        adapter.load(documents)
        return adapter

    benchmark.pedantic(load_fresh, rounds=2, iterations=1)


def test_size_ordering(corpus):
    """Sinew most compact; EAV largest (the Table 3 size ordering)."""
    documents, params = corpus
    adapters = [
        SinewNoBench(params),
        MongoNoBench(params),
        EavNoBench(params),
        PgJsonNoBench(params),
    ]
    for adapter in adapters:
        adapter.load(documents)
    sizes = {a.name: a.storage_bytes() for a in adapters}
    assert sizes["Sinew"] == min(sizes.values())
    assert sizes["EAV"] == max(sizes.values())
