"""Ablation for section 3.1.3's query-pattern adaptivity.

A workload hammers one *sparse* attribute (below the density threshold,
so the base policy never materializes it).  With the adaptive mode on,
the analyzer notices the access pattern, materializes the hot key, and
subsequent queries run against a physical column with real statistics.

Reported: query time before/after the adaptive pass, and the plan change.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import MaterializationPolicy, SinewConfig, SinewDB
from repro.harness import format_table

from conftest import write_report

N_RECORDS = max(400, int(6000 * float(os.environ.get("REPRO_SCALE", "1.0"))))
HOT_QUERY = "SELECT _id FROM hotcold WHERE rare_key = 'needle'"


def build() -> SinewDB:
    config = SinewConfig(policy=MaterializationPolicy(hot_access_threshold=10))
    sdb = SinewDB("adaptive_bench", config)
    sdb.create_collection("hotcold")
    documents = []
    for index in range(N_RECORDS):
        document = {"filler": f"f{index}", "n": index}
        if index % 25 == 0:  # 4% dense: far below the base policy
            document["rare_key"] = "needle" if index % 100 == 0 else f"value{index}"
        documents.append(document)
    sdb.load("hotcold", documents)
    sdb.settle("hotcold")  # base policy settles (rare_key stays virtual)
    return sdb


def _best(fn, repeats: int = 3) -> float:
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def world():
    sdb = build()
    before = _best(lambda: sdb.query(HOT_QUERY))
    plan_before = sdb.explain(HOT_QUERY)
    # the workload keeps hitting the sparse key...
    for _ in range(12):
        sdb.query(HOT_QUERY)
    # ...and the background analyzer+materializer react
    report = sdb.analyze_schema("hotcold")
    sdb.run_materializer("hotcold")
    after = _best(lambda: sdb.query(HOT_QUERY))
    plan_after = sdb.explain(HOT_QUERY)
    return sdb, before, after, plan_before, plan_after, report


@pytest.fixture(scope="module", autouse=True)
def report(world):
    _sdb, before, after, plan_before, plan_after, analyzer_report = world
    rows = [
        ["before (virtual, base policy)", f"{before:.4f}"],
        ["after (hot-materialized)", f"{after:.4f}"],
        ["speedup", f"{before / after:.1f}x"],
    ]
    text = format_table(
        ["state", "query time (s)"],
        rows,
        title=(
            "Section 3.1.3 ablation -- query-pattern-adaptive "
            f"materialization, {N_RECORDS} records"
        ),
    )
    text += "\n\nplan before:\n" + plan_before
    text += "\n\nplan after:\n" + plan_after
    write_report("ablation_adaptive_policy", text)
    yield


def test_hot_key_materialized(world):
    sdb, _before, _after, _pb, _pa, analyzer_report = world
    hot = [d for d in analyzer_report.decisions if d.reason == "hot"]
    assert [d.key_name for d in hot] == ["rare_key"]
    assert any(
        key == "rare_key" and storage == "physical"
        for key, _t, storage in sdb.logical_schema("hotcold")
    )


def test_adaptive_speedup(world):
    _sdb, before, after, _pb, _pa, _report = world
    assert after < before


def test_answers_unchanged(world):
    sdb, _before, _after, _pb, _pa, _report = world
    expected = N_RECORDS // 100 + (1 if N_RECORDS % 100 else 0)
    assert len(sdb.query(HOT_QUERY)) == expected


@pytest.mark.parametrize("state", ["virtual", "materialized"])
def test_adaptive_query(benchmark, world, state):
    sdb = world[0]
    benchmark.group = "adaptive-policy"
    if state == "virtual":
        # fresh instance still in the virtual state
        fresh = build()
        benchmark.pedantic(
            lambda: fresh.query(HOT_QUERY), rounds=2, iterations=1, warmup_rounds=1
        )
    else:
        benchmark.pedantic(
            lambda: sdb.query(HOT_QUERY), rounds=2, iterations=1, warmup_rounds=1
        )
