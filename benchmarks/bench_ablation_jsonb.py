"""Ablation for the paper's section 6.7 outlook: would ``jsonb`` fix
Postgres JSON?

The paper: "these deficiencies may be remedied with Postgres's recent
announcement of jsonb ..., a more systemic deficiency is the opaqueness
of the JSON type to the optimizer".  This bench runs text-JSON, binary
jsonb, and Sinew on the same workload and separates the two effects:

* jsonb removes the parse-per-extraction CPU cost (the part it fixes);
* jsonb keeps the fixed default selectivities, the bad GROUP BY plans,
  the Q7 cast abort, and per-record key strings (the parts it does not).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.baselines.jsonb import PgJsonbStore
from repro.baselines.pgjson import PgJsonStore
from repro.harness import format_table
from repro.nobench import NoBenchGenerator, SinewNoBench
from repro.rdbms.errors import TypeCastError

from conftest import write_report

N_RECORDS = max(400, int(4000 * float(os.environ.get("REPRO_SCALE", "1.0"))))


@pytest.fixture(scope="module")
def world():
    generator = NoBenchGenerator(N_RECORDS)
    documents = list(generator.documents())
    params = generator.params()

    text = PgJsonStore()
    text.create_collection("nobench_main")
    text.load("nobench_main", documents)
    text.analyze("nobench_main")

    binary = PgJsonbStore()
    binary.create_collection("nobench_main")
    binary.load("nobench_main", documents)
    binary.analyze("nobench_main")

    sinew = SinewNoBench(params)
    sinew.load(documents)
    sinew.prepare()
    return text, binary, sinew, params


def _best(fn, repeats: int = 3) -> float:
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _queries(fn_prefix: str, params) -> dict[str, str]:
    return {
        "q1-projection": (
            f"SELECT {fn_prefix}_get_text(data, 'str1'), "
            f"{fn_prefix}_get_num(data, 'num') FROM nobench_main"
        ),
        "q6-selection": (
            f"SELECT id FROM nobench_main WHERE {fn_prefix}_get_num(data, 'num') "
            f"BETWEEN {params.q6_low} AND {params.q6_high}"
        ),
        "q10-aggregation": (
            f"SELECT {fn_prefix}_get_num(data, 'thousandth'), count(*) "
            f"FROM nobench_main WHERE {fn_prefix}_get_num(data, 'num') "
            f"BETWEEN {params.q10_low} AND {params.q10_high} "
            f"GROUP BY {fn_prefix}_get_num(data, 'thousandth')"
        ),
    }


@pytest.fixture(scope="module", autouse=True)
def report(world):
    text, binary, sinew, params = world
    rows = []
    for label in ("q1-projection", "q6-selection", "q10-aggregation"):
        text_s = _best(lambda: text.query(_queries("json", params)[label]))
        binary_s = _best(lambda: binary.query(_queries("jsonb", params)[label]))
        sinew_s = _best(lambda: sinew.run({"q1-projection": "q1",
                                           "q6-selection": "q6",
                                           "q10-aggregation": "q10"}[label]))
        rows.append(
            [label, f"{text_s:.4f}", f"{binary_s:.4f}", f"{sinew_s:.4f}"]
        )
    rows.append(
        [
            "storage (MB)",
            f"{text.storage_bytes('nobench_main') / 1e6:.2f}",
            f"{binary.storage_bytes('nobench_main') / 1e6:.2f}",
            f"{sinew.storage_bytes() / 1e6:.2f}",
        ]
    )
    q7_text = "FAIL" if _fails_q7(text, "json", params) else "ok"
    q7_binary = "FAIL" if _fails_q7(binary, "jsonb", params) else "ok"
    rows.append(["q7 (multi-typed key)", q7_text, q7_binary, "ok"])
    write_report(
        "ablation_jsonb",
        format_table(
            ["task", "PG JSON (text)", "PG jsonb (binary)", "Sinew"],
            rows,
            title=(
                "Section 6.7 ablation -- what jsonb fixes and what it "
                f"does not, {N_RECORDS} records"
            ),
        ),
    )
    yield


def _fails_q7(store, fn_prefix: str, params) -> bool:
    try:
        store.query(
            f"SELECT id FROM nobench_main WHERE {fn_prefix}_get_num(data, 'dyn1') "
            f"BETWEEN {params.q7_low} AND {params.q7_high}"
        )
        return False
    except TypeCastError:
        return True


def test_jsonb_faster_than_text(world):
    text, binary, _sinew, params = world
    text_s = _best(lambda: text.query(_queries("json", params)["q1-projection"]))
    binary_s = _best(lambda: binary.query(_queries("jsonb", params)["q1-projection"]))
    assert binary_s < text_s

def test_sinew_still_fastest(world):
    _text, binary, sinew, params = world
    binary_s = _best(lambda: binary.query(_queries("jsonb", params)["q6-selection"]))
    sinew_s = _best(lambda: sinew.run("q6"))
    assert sinew_s < binary_s


def test_jsonb_keeps_the_systemic_deficiencies(world):
    _text, binary, _sinew, params = world
    # Q7 still aborts
    assert _fails_q7(binary, "jsonb", params)
    # the optimizer is still blind
    plan = binary.db.explain(
        "SELECT id FROM nobench_main WHERE jsonb_get_num(data, 'num') > 0"
    )
    assert "rows=200" in plan


def test_jsonb_storage_larger_than_sinew(world):
    _text, binary, sinew, _params = world
    assert binary.storage_bytes("nobench_main") > sinew.storage_bytes()


@pytest.mark.parametrize("system", ["text", "jsonb", "sinew"])
def test_jsonb_projection(benchmark, world, system):
    text, binary, sinew, params = world
    benchmark.group = "jsonb-projection"
    if system == "text":
        fn = lambda: text.query(_queries("json", params)["q1-projection"])
    elif system == "jsonb":
        fn = lambda: binary.query(_queries("jsonb", params)["q1-projection"])
    else:
        fn = lambda: sinew.run("q1")
    benchmark.pedantic(fn, rounds=2, iterations=1, warmup_rounds=1)
