"""Paper Figure 8: the random update task.

``UPDATE ... SET sparse_588 = 'DUMMY' WHERE sparse_589 = <value>`` at
~1/10000 selectivity.  Expected shape (paper section 6.6): Sinew fastest
despite its transactional overhead, because its predicate evaluation over
the binary reservoir beats MongoDB's BSON walk; Postgres-JSON pays a full
JSON decode + re-encode per matched row; EAV needs a self-join and extra
statements per object and comes last.

Each measured run executes the update against freshly loaded systems so
repeated rounds see identical state.
"""

from __future__ import annotations

import pytest

from repro.harness import build_systems, format_table, large_scale, small_scale
from repro.nobench import NoBenchGenerator

from conftest import write_report


def measured_update(scale):
    runs, _params = build_systems(scale, NoBenchGenerator(scale.n_records))
    rows = []
    for run in runs:
        measurement = run.measure("update", run.adapter.update)
        updated = measurement.result
        rows.append(
            [
                run.name,
                measurement.cell(scale.use_effective_time),
                updated if updated is not None else "-",
            ]
        )
    return rows, [run.name for run in runs]


@pytest.fixture(scope="module", autouse=True)
def report():
    sections = []
    for scale in (small_scale(), large_scale()):
        rows, _names = measured_update(scale)
        sections.append(
            format_table(
                ["System", "Update (s)", "rows matched"],
                rows,
                title=f"Figure 8 reproduction -- {scale.name}",
            )
        )
    write_report("fig8_update", "\n\n".join(sections))
    yield


@pytest.fixture(scope="module")
def fresh_world():
    scale = small_scale()
    runs, _params = build_systems(scale)
    return runs


@pytest.mark.parametrize("system", ["Sinew", "MongoDB", "EAV", "PG JSON"])
def test_fig8_update(benchmark, fresh_world, system):
    adapter = next(run.adapter for run in fresh_world if run.name == system)
    benchmark.group = "fig8-update"
    # the update is idempotent after the first round (the same rows get the
    # same value), so repeated rounds measure the same logical work
    benchmark.pedantic(adapter.update, rounds=2, iterations=1)
