"""Ablation for paper section 4.3: the inverted text index.

The paper's motivation for integrating Solr was to answer predicates on
virtual columns from the index instead of extracting from the reservoir
per row.  This bench compares:

* an equality predicate on a sparse virtual column, evaluated by
  per-row extraction (``WHERE sparse_X = 'v'``);
* the same predicate through the index (``WHERE matches('sparse_X', 'v')``);
* a multi-term full-text search only the index can answer.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import SinewConfig, SinewDB
from repro.harness import format_table
from repro.nobench import NoBenchGenerator

from conftest import write_report

N_RECORDS = max(400, int(4000 * float(os.environ.get("REPRO_SCALE", "1.0"))))


@pytest.fixture(scope="module")
def world():
    generator = NoBenchGenerator(N_RECORDS)
    params = generator.params()
    sdb = SinewDB("text_index", SinewConfig(enable_text_index=True))
    sdb.create_collection("nobench_main")
    sdb.load("nobench_main", generator.documents())
    sdb.analyze()
    return sdb, params


@pytest.fixture(scope="module")
def auto_world():
    """Same data with automatic index prefiltering of equality predicates."""
    generator = NoBenchGenerator(N_RECORDS)
    sdb = SinewDB(
        "text_index_auto",
        SinewConfig(enable_text_index=True, rewrite_predicates_with_index=True),
    )
    sdb.create_collection("nobench_main")
    sdb.load("nobench_main", generator.documents())
    sdb.analyze()
    return sdb, generator.params()


def extraction_sql(params) -> str:
    return (
        f"SELECT _id FROM nobench_main WHERE {params.q9_key} = '{params.q9_value}'"
    )


def index_sql(params) -> str:
    return (
        f"SELECT _id FROM nobench_main "
        f"WHERE matches('{params.q9_key}', '{params.q9_value.lower()}')"
    )


def _best(fn, repeats: int = 3) -> float:
    fn()
    return min(_timed(fn) for _ in range(repeats))


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@pytest.fixture(scope="module", autouse=True)
def report(world, auto_world):
    sdb, params = world
    auto_sdb, auto_params = auto_world
    extraction = _best(lambda: sdb.query(extraction_sql(params)))
    index = _best(lambda: sdb.query(index_sql(params)))
    automatic = _best(lambda: auto_sdb.query(extraction_sql(auto_params)))
    fulltext = _best(
        lambda: sdb.query("SELECT _id FROM nobench_main WHERE matches('*', 'term_*')")
    )
    rows = [
        ["reservoir extraction", f"{extraction:.4f}"],
        ["inverted index probe (explicit matches())", f"{index:.4f}"],
        ["automatic prefilter + exact recheck", f"{automatic:.4f}"],
        ["full-text search (index only)", f"{fulltext:.4f}"],
        ["index speedup", f"{extraction / index:.1f}x"],
    ]
    write_report(
        "ablation_text_index",
        format_table(
            ["virtual-column predicate via", "time (s)"],
            rows,
            title=f"Section 4.3 ablation -- text index, {N_RECORDS} records",
        ),
    )
    yield


def test_index_and_extraction_agree(world):
    sdb, params = world
    by_extraction = sorted(sdb.query(extraction_sql(params)).column(0))
    by_index = sorted(sdb.query(index_sql(params)).column(0))
    assert by_extraction == by_index
    assert by_extraction  # non-empty


def test_full_text_reaches_array_terms(world):
    sdb, _params = world
    result = sdb.query(
        "SELECT count(*) FROM nobench_main WHERE matches('nested_arr', 'term_*')"
    )
    assert result.scalar() == N_RECORDS  # every record has nested_arr terms


@pytest.mark.parametrize("mode", ["extraction", "index"])
def test_text_index_predicate(benchmark, world, mode):
    sdb, params = world
    sql = extraction_sql(params) if mode == "extraction" else index_sql(params)
    benchmark.group = "text-index"
    benchmark.pedantic(lambda: sdb.query(sql), rounds=3, iterations=1, warmup_rounds=1)
