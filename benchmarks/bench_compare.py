"""Render a markdown comparison of a bench snapshot against the baseline.

Reads the schema-2 snapshot written by :mod:`run_bench_gate` plus the
committed ``benchmarks/baseline.json`` and emits a markdown report: one
table per lane (wall seconds baseline vs snapshot with the ratio, plus
the extraction-access signature) and a Figure 6 speedup summary.  CI
appends the output to ``$GITHUB_STEP_SUMMARY`` so every PR shows the
numbers without downloading the artifact.

This script never fails the build -- it is reporting only; the pass/fail
decision belongs to :mod:`check_bench_gate`.

Usage::

    python benchmarks/bench_compare.py \
        --snapshot benchmarks/results/BENCH_PR10.json \
        --baseline benchmarks/baseline.json \
        --output "$GITHUB_STEP_SUMMARY"
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from check_bench_gate import _iter_entries


def _accesses(entry: dict) -> str:
    counters = entry["counters"]
    headers = counters["header_decodes"] + counters["header_cache_hits"]
    subdocs = counters["subdoc_decodes"] + counters["subdoc_cache_hits"]
    return f"{counters['udf_calls']}/{headers}/{subdocs}"


def _ratio(base: float, snap: float) -> str:
    if not base:
        return "n/a"
    return f"{snap / base:.2f}x"


def render(snapshot: dict, baseline: dict) -> str:
    lines: list[str] = ["## Bench gate comparison", ""]
    lines.append(
        f"Snapshot: python {snapshot.get('python')}, "
        f"scale {snapshot.get('repro_scale')}, "
        f"{snapshot.get('effective_cpu_count')} effective cpu(s). "
        f"Baseline: python {baseline.get('python')}, "
        f"scale {baseline.get('repro_scale')}."
    )
    lines.append("")

    if snapshot.get("schema") != baseline.get("schema"):
        lines.append(
            f"**Schema mismatch** (snapshot {snapshot.get('schema')} vs "
            f"baseline {baseline.get('schema')}) -- no comparison possible."
        )
        return "\n".join(lines) + "\n"

    for lane, snap_config in snapshot.get("lanes", {}).items():
        base_config = baseline.get("lanes", {}).get(lane)
        if base_config is None:
            lines.append(f"### lane={lane} (no baseline data)")
            lines.append("")
            continue
        base_entries = dict(_iter_entries(base_config))
        snap_entries = dict(_iter_entries(snap_config))
        lines.append(
            f"### lane={lane} (workers={snap_config.get('workers')})"
        )
        lines.append("")
        lines.append(
            "| query | rows | wall base (s) | wall now (s) | ratio "
            "| udf/header/subdoc accesses |"
        )
        lines.append("|---|---|---|---|---|---|")
        for label in sorted(base_entries, key=_label_key):
            base_entry = base_entries[label]
            snap_entry = snap_entries.get(label)
            if snap_entry is None:
                lines.append(f"| {label} | missing from snapshot | | | | |")
                continue
            rows = str(snap_entry["rows"])
            if snap_entry["rows"] != base_entry["rows"]:
                rows = f"**{snap_entry['rows']} != {base_entry['rows']}**"
            accesses = _accesses(snap_entry)
            if snap_entry["counters"] != base_entry["counters"]:
                accesses = f"**{accesses} (was {_accesses(base_entry)})**"
            lines.append(
                f"| {label} | {rows} "
                f"| {base_entry['wall_seconds']:.4f} "
                f"| {snap_entry['wall_seconds']:.4f} "
                f"| {_ratio(base_entry['wall_seconds'], snap_entry['wall_seconds'])} "
                f"| {accesses} |"
            )
        lines.append("")

    lines.append("### Figure 6 speedup (serial / process)")
    lines.append("")
    lines.append("| query | baseline | snapshot |")
    lines.append("|---|---|---|")
    base_speedups = baseline.get("fig6_per_query_speedup", {})
    snap_speedups = snapshot.get("fig6_per_query_speedup", {})
    for query_id in sorted(snap_speedups, key=_label_key):
        base = base_speedups.get(query_id)
        lines.append(
            f"| {query_id} "
            f"| {f'{base:.2f}x' if base is not None else 'n/a'} "
            f"| {snap_speedups[query_id]:.2f}x |"
        )
    lines.append(
        f"| **total** | {baseline.get('fig6_speedup', 0.0):.2f}x "
        f"| {snapshot.get('fig6_speedup', 0.0):.2f}x |"
    )
    lines.append("")
    return "\n".join(lines) + "\n"


def _label_key(label: str):
    """Sort q2 before q10: split trailing digits out of each segment."""
    parts = []
    for segment in label.split("/"):
        head = segment.rstrip("0123456789")
        tail = segment[len(head):]
        parts.append((head, int(tail) if tail else -1))
    return parts


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--snapshot", default="benchmarks/results/BENCH_PR10.json")
    parser.add_argument("--baseline", default="benchmarks/baseline.json")
    parser.add_argument(
        "--output",
        default=None,
        help="append the markdown here (default: stdout)",
    )
    args = parser.parse_args()

    snapshot = json.loads(pathlib.Path(args.snapshot).read_text())
    baseline = json.loads(pathlib.Path(args.baseline).read_text())
    report = render(snapshot, baseline)
    if args.output:
        with open(args.output, "a", encoding="utf-8") as handle:
            handle.write(report)
    else:
        sys.stdout.write(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
