"""Shared infrastructure for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper.  The
paper-style result grids are written to ``benchmarks/results/*.txt`` (and
echoed to stdout) by module-scoped fixtures, so a single

    pytest benchmarks/ --benchmark-only

run produces both the pytest-benchmark timing table and the full set of
paper-artifact reports.

Scale knob: set ``REPRO_SCALE`` (default 1.0) to grow or shrink every
dataset proportionally.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_report(name: str, text: str) -> pathlib.Path:
    """Persist a paper-style report and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)
    return path


def write_json(name: str, payload: dict) -> pathlib.Path:
    """Persist machine-readable results (timings + extraction counters)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def read_json(name: str) -> dict:
    return json.loads((RESULTS_DIR / f"{name}.json").read_text())


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
