"""Ablation for paper section 4.2: array storage strategies.

The same array-containment workload (NoBench Q8's shape) under the three
strategies Sinew offers: the array kept native in the reservoir, each
position as its own column, and a separate element table.  The paper
argues positional columns make containment "trivial filters" and the
element table gives the optimizer aggregate statistics on elements.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import ArrayStorageManager, ArrayStrategy, SinewDB
from repro.harness import format_table
from repro.nobench import NoBenchGenerator
from repro.nobench.generator import ARRAY_LENGTH

from conftest import write_report

N_RECORDS = max(400, int(4000 * float(os.environ.get("REPRO_SCALE", "1.0"))))


def build(strategy: ArrayStrategy):
    generator = NoBenchGenerator(N_RECORDS)
    params = generator.params()
    sdb = SinewDB(f"arrays_{strategy.value}")
    sdb.create_collection("nobench_main")
    sdb.load("nobench_main", generator.documents())
    manager = ArrayStorageManager(sdb)
    if strategy is not ArrayStrategy.NATIVE:
        manager.apply(
            "nobench_main",
            "nested_arr",
            strategy,
            fixed_size=ARRAY_LENGTH if strategy is ArrayStrategy.POSITIONAL else None,
        )
    sdb.analyze()
    return sdb, manager, params


@pytest.fixture(scope="module")
def worlds():
    return {strategy: build(strategy) for strategy in ArrayStrategy}


def _best(fn, repeats: int = 3) -> float:
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module", autouse=True)
def report(worlds):
    rows = []
    for strategy, (sdb, manager, params) in worlds.items():
        containment_s = _best(
            lambda m=manager, p=params: m.contains("nobench_main", "nested_arr", p.q8_term)
        )
        rows.append(
            [
                strategy.value,
                f"{containment_s:.4f}",
                f"{sdb.db.total_table_bytes() / 1e6:.2f}",
            ]
        )
    write_report(
        "ablation_array_storage",
        format_table(
            ["strategy", "containment (s)", "total size (MB)"],
            rows,
            title=f"Section 4.2 ablation -- array storage, {N_RECORDS} records",
        ),
    )
    yield


def test_all_strategies_agree(worlds):
    results = {
        strategy: manager.contains("nobench_main", "nested_arr", params.q8_term)
        for strategy, (_sdb, manager, params) in worlds.items()
    }
    reference = results[ArrayStrategy.NATIVE]
    assert reference  # the term matches something
    for strategy, matched in results.items():
        assert matched == reference, strategy


def test_element_table_has_statistics(worlds):
    sdb, _manager, _params = worlds[ArrayStrategy.ELEMENT_TABLE]
    stats = sdb.db.stats("nobench_main__nested_arr")
    assert stats is not None
    assert stats.columns["element"].n_distinct > 10


@pytest.mark.parametrize(
    "strategy", [ArrayStrategy.NATIVE, ArrayStrategy.POSITIONAL, ArrayStrategy.ELEMENT_TABLE]
)
def test_array_containment(benchmark, worlds, strategy):
    _sdb, manager, params = worlds[strategy]
    benchmark.group = "array-containment"
    benchmark.pedantic(
        lambda: manager.contains("nobench_main", "nested_arr", params.q8_term),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
