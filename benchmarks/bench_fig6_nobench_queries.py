"""Paper Figure 6 (a and b): NoBench queries Q1-Q10 on all four systems.

Figure 6a is the in-memory regime (everything cached, CPU-bound); Figure
6b is the I/O-bound regime (dataset larger than the buffer pool; reported
times are wall + modelled I/O).  Expected shape (paper sections 6.3-6.5):

* projections (Q1-Q4): Sinew ~an order of magnitude over Postgres-JSON
  and EAV; Sinew ahead of MongoDB on the dense Q1/Q2, with a smaller gap
  on the sparse Q3/Q4;
* selections (Q5-Q9): Sinew and MongoDB well ahead of the others; Q7
  aborts on Postgres-JSON (TypeCastError on the multi-typed key) and, at
  the large scale, Q8/Q9 die on EAV (DiskFullError);
* aggregation (Q10): Postgres-JSON worst (mis-planned GROUP BY).
"""

from __future__ import annotations

import pytest

from repro.harness import (
    build_systems,
    format_table,
    large_scale,
    result_rows,
    run_suite,
    small_scale,
)

QUERIES = ["q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9", "q10"]

from conftest import write_report


@pytest.fixture(scope="module")
def small_world():
    scale = small_scale()
    runs, params = build_systems(scale)
    return scale, runs, params


@pytest.fixture(scope="module", autouse=True)
def report(small_world):
    sections = []
    scale, runs, _params = small_world
    names = [run.name for run in runs]

    results = run_suite(runs, QUERIES, repeats=2)
    rows = result_rows(results, names, scale.use_effective_time)
    sections.append(
        format_table(
            ["query"] + names,
            rows,
            title=f"Figure 6a reproduction -- {scale.name} (seconds)",
        )
    )

    large = large_scale()
    large_runs, _params = build_systems(large)
    large_results = run_suite(large_runs, QUERIES, repeats=1)
    rows = result_rows(large_results, names, large.use_effective_time)
    sections.append(
        format_table(
            ["query"] + names,
            rows,
            title=f"Figure 6b reproduction -- {large.name} "
            "(seconds incl. modelled I/O)",
        )
    )
    write_report("fig6_nobench_queries", "\n\n".join(sections))
    yield


def _adapter(runs, name):
    return next(run.adapter for run in runs if run.name == name)


@pytest.mark.parametrize("query_id", QUERIES)
@pytest.mark.parametrize("system", ["Sinew", "MongoDB", "EAV", "PG JSON"])
def test_fig6a_query(benchmark, small_world, query_id, system):
    _scale, runs, _params = small_world
    if system == "PG JSON" and query_id == "q7":
        pytest.skip("Q7 cannot execute on Postgres JSON (paper section 6.4)")
    adapter = _adapter(runs, system)
    benchmark.group = f"fig6a-{query_id}"
    benchmark.pedantic(
        lambda: adapter.run(query_id), rounds=2, iterations=1, warmup_rounds=1
    )
