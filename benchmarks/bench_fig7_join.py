"""Paper Figure 7: the NoBench Q11 join.

Expected shape (paper section 6.5): Sinew fastest; Postgres-JSON and EAV
behind it; MongoDB an order of magnitude slower than Sinew (client-side
join with explicit intermediate collections).  At the large scale the
MongoDB and EAV runs terminate with out-of-disk failures.
"""

from __future__ import annotations

import pytest

from repro.harness import (
    build_systems,
    format_table,
    large_scale,
    result_rows,
    run_suite,
    small_scale,
)

from conftest import write_report


@pytest.fixture(scope="module")
def small_world():
    scale = small_scale()
    runs, params = build_systems(scale)
    return scale, runs


@pytest.fixture(scope="module", autouse=True)
def report(small_world):
    sections = []
    scale, runs = small_world
    names = [run.name for run in runs]
    results = run_suite(runs, ["q11"], repeats=2)
    sections.append(
        format_table(
            ["query"] + names,
            result_rows(results, names, scale.use_effective_time),
            title=f"Figure 7 reproduction -- {scale.name} (seconds)",
        )
    )

    large = large_scale()
    large_runs, _params = build_systems(large)
    large_results = run_suite(large_runs, ["q11"], repeats=1)
    sections.append(
        format_table(
            ["query"] + names,
            result_rows(large_results, names, large.use_effective_time),
            title=f"Figure 7 reproduction -- {large.name} "
            "(seconds incl. modelled I/O)",
        )
    )

    # the headline ratio: Mongo's client-side join vs Sinew's RDBMS join
    sinew = results["q11"]["Sinew"].wall_seconds
    mongo = results["q11"]["MongoDB"].wall_seconds
    sections.append(f"MongoDB / Sinew wall-time ratio at small scale: {mongo / sinew:.1f}x")
    write_report("fig7_join", "\n\n".join(sections))
    yield


@pytest.mark.parametrize("system", ["Sinew", "MongoDB", "EAV", "PG JSON"])
def test_fig7_q11(benchmark, small_world, system):
    _scale, runs = small_world
    adapter = next(run.adapter for run in runs if run.name == system)
    benchmark.group = "fig7-q11"
    benchmark.pedantic(lambda: adapter.run("q11"), rounds=2, iterations=1)
