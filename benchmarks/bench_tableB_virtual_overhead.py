"""Paper Appendix B / Table 5: virtual- vs. physical-column overhead.

The same three queries run against the same tweets, with the touched
attributes stored once as virtual columns (serialized in the reservoir)
and once as physical columns.  The paper found the virtual penalty under
5% for the projection and under 2% for the selection and ORDER BY -- the
extraction cost is one binary search amortised over the fixed costs of
query processing.

A pure-Python UDF call costs relatively more than a compiled one, so the
reproduction target here is the *trend* (small, and shrinking as fixed
query costs grow), with the measured ratios reported side by side.

A third "mixed" system exercises the per-query decode cache on a
multi-key query (three virtual columns plus one dirty column): with the
cache, each row's reservoir header parses exactly once per query; without
it, once per extraction site.  Timings, extraction counters, and the
cached-vs-uncached comparison land in ``results/tableB_virtual_overhead.json``.
"""

from __future__ import annotations

import os

import pytest

from repro.core import SinewDB
from repro.harness import format_table
from repro.rdbms.types import SqlType
from repro.workloads import APPENDIX_B_QUERIES, TwitterGenerator

from conftest import write_json, write_report

N_TWEETS = max(500, int(6000 * float(os.environ.get("REPRO_SCALE", "1.0"))))

APPENDIX_B_ATTRIBUTES = [
    ("user.id", SqlType.INTEGER),
    ("user.lang", SqlType.TEXT),
    ("user.friends_count", SqlType.INTEGER),
    ("id_str", SqlType.TEXT),
]

#: The decode-cache showcase: >= 3 virtual top-level columns plus one dirty
#: column, all touching the same reservoir value per row.
MULTIKEY_QUERY = "SELECT id_str, text, favorite_count, source FROM tweets"
MULTIKEY_DIRTY_KEY = ("source", SqlType.TEXT)


def build(materialize: bool) -> SinewDB:
    sdb = SinewDB("tableB_physical" if materialize else "tableB_virtual")
    sdb.create_collection("tweets")
    sdb.load("tweets", TwitterGenerator(N_TWEETS).tweets())
    if materialize:
        for key, sql_type in APPENDIX_B_ATTRIBUTES:
            sdb.materialize("tweets", key, sql_type)
        sdb.run_materializer("tweets")
    sdb.analyze()
    return sdb


def build_mixed() -> SinewDB:
    """Three virtual keys plus one half-materialized (dirty) column."""
    sdb = SinewDB("tableB_mixed")
    sdb.create_collection("tweets")
    sdb.load("tweets", TwitterGenerator(N_TWEETS).tweets())
    key, sql_type = MULTIKEY_DIRTY_KEY
    sdb.materialize("tweets", key, sql_type)
    sdb.materializer_step("tweets", max_rows=N_TWEETS // 2)
    sdb.analyze()
    return sdb


@pytest.fixture(scope="module")
def systems():
    return {"virtual": build(False), "physical": build(True), "mixed": build_mixed()}


@pytest.fixture(scope="module", autouse=True)
def report(systems):
    rows = []
    json_payload: dict = {"n_tweets": N_TWEETS, "queries": {}, "multikey": {}}
    for query_id, sql in APPENDIX_B_QUERIES.items():
        times = {}
        counters = {}
        for condition in ("virtual", "physical"):
            sdb = systems[condition]
            counters[condition] = dict(sdb.query(sql).exec_stats)  # warm
            best = min(
                _timed(lambda: sdb.query(sql)) for _ in range(3)
            )
            times[condition] = best
        overhead = (times["virtual"] - times["physical"]) / times["physical"] * 100
        rows.append(
            [
                query_id,
                f"{times['virtual']:.4f}",
                f"{times['physical']:.4f}",
                f"{overhead:+.1f}%",
            ]
        )
        json_payload["queries"][query_id] = {
            "sql": sql,
            "seconds": times,
            "extraction": counters,
        }

    # the multi-key decode-amortization comparison (cached vs uncached)
    mixed = systems["mixed"]
    cached = mixed.query(MULTIKEY_QUERY)
    uncached = mixed.query(MULTIKEY_QUERY, use_extraction_cache=False)
    json_payload["multikey"] = {
        "sql": MULTIKEY_QUERY,
        "rows": len(cached.rows),
        "cached": dict(cached.exec_stats),
        "uncached": dict(uncached.exec_stats),
        "decodes_per_row_cached": cached.exec_stats["header_decodes"]
        / max(1, len(cached.rows)),
        "decodes_per_row_uncached": uncached.exec_stats["header_decodes"]
        / max(1, len(uncached.rows)),
    }
    rows.append(
        [
            "multikey decode/row",
            f"{json_payload['multikey']['decodes_per_row_cached']:.1f} cached",
            f"{json_payload['multikey']['decodes_per_row_uncached']:.1f} uncached",
            "",
        ]
    )
    write_json("tableB_virtual_overhead", json_payload)
    write_report(
        "tableB_virtual_overhead",
        format_table(
            ["Query", "Virtual (s)", "Physical (s)", "virtual overhead"],
            rows,
            title=f"Table 5 (Appendix B) reproduction -- {N_TWEETS} tweets",
        ),
    )
    yield


def _timed(fn) -> float:
    import time

    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_results_identical(systems):
    for sql in APPENDIX_B_QUERIES.values():
        virtual_rows = systems["virtual"].query(sql).rows
        physical_rows = systems["physical"].query(sql).rows
        if "ORDER BY" not in sql:
            virtual_rows = sorted(map(repr, virtual_rows))
            physical_rows = sorted(map(repr, physical_rows))
        assert len(virtual_rows) == len(physical_rows)


def test_multikey_single_decode(systems):
    """Acceptance: >= 3 virtual + 1 dirty column -> 1 header decode per row
    with the cache, >= 3 without, and identical results either way."""
    mixed = systems["mixed"]
    cached = mixed.query(MULTIKEY_QUERY)
    uncached = mixed.query(MULTIKEY_QUERY, use_extraction_cache=False)
    assert cached.rows == uncached.rows
    n = len(cached.rows)
    assert n == N_TWEETS
    assert cached.exec_stats["header_decodes"] == n
    assert uncached.exec_stats["header_decodes"] >= 3 * n
    assert cached.exec_stats["header_cache_hits"] > 0
    assert uncached.exec_stats["header_cache_hits"] == 0


def test_explain_analyze_reports_counters(systems):
    text = systems["mixed"].explain_analyze(MULTIKEY_QUERY)
    assert "actual rows=" in text
    assert "header_decodes=" in text
    assert "Execution time:" in text


def test_counters_emitted_in_json(report):
    from conftest import read_json

    payload = read_json("tableB_virtual_overhead")
    multikey = payload["multikey"]
    for side in ("cached", "uncached"):
        for counter in ("header_decodes", "header_cache_hits", "udf_calls"):
            assert counter in multikey[side]
    assert multikey["decodes_per_row_cached"] <= 1.0
    assert multikey["decodes_per_row_uncached"] >= 3.0


@pytest.mark.parametrize("query_id", list(APPENDIX_B_QUERIES))
@pytest.mark.parametrize("condition", ["virtual", "physical"])
def test_tableB_query(benchmark, systems, query_id, condition):
    sdb = systems[condition]
    sql = APPENDIX_B_QUERIES[query_id]
    benchmark.group = f"tableB-{query_id}"
    benchmark.pedantic(lambda: sdb.query(sql), rounds=3, iterations=1, warmup_rounds=1)
