"""Paper Appendix B / Table 5: virtual- vs. physical-column overhead.

The same three queries run against the same tweets, with the touched
attributes stored once as virtual columns (serialized in the reservoir)
and once as physical columns.  The paper found the virtual penalty under
5% for the projection and under 2% for the selection and ORDER BY -- the
extraction cost is one binary search amortised over the fixed costs of
query processing.

A pure-Python UDF call costs relatively more than a compiled one, so the
reproduction target here is the *trend* (small, and shrinking as fixed
query costs grow), with the measured ratios reported side by side.
"""

from __future__ import annotations

import os

import pytest

from repro.core import SinewDB
from repro.harness import format_table
from repro.rdbms.types import SqlType
from repro.workloads import APPENDIX_B_QUERIES, TwitterGenerator

from conftest import write_report

N_TWEETS = max(500, int(6000 * float(os.environ.get("REPRO_SCALE", "1.0"))))

APPENDIX_B_ATTRIBUTES = [
    ("user.id", SqlType.INTEGER),
    ("user.lang", SqlType.TEXT),
    ("user.friends_count", SqlType.INTEGER),
    ("id_str", SqlType.TEXT),
]


def build(materialize: bool) -> SinewDB:
    sdb = SinewDB("tableB_physical" if materialize else "tableB_virtual")
    sdb.create_collection("tweets")
    sdb.load("tweets", TwitterGenerator(N_TWEETS).tweets())
    if materialize:
        for key, sql_type in APPENDIX_B_ATTRIBUTES:
            sdb.materialize("tweets", key, sql_type)
        sdb.run_materializer("tweets")
    sdb.analyze()
    return sdb


@pytest.fixture(scope="module")
def systems():
    return {"virtual": build(False), "physical": build(True)}


@pytest.fixture(scope="module", autouse=True)
def report(systems):
    import time

    rows = []
    for query_id, sql in APPENDIX_B_QUERIES.items():
        times = {}
        for condition in ("virtual", "physical"):
            sdb = systems[condition]
            sdb.query(sql)  # warm
            best = min(
                _timed(lambda: sdb.query(sql)) for _ in range(3)
            )
            times[condition] = best
        overhead = (times["virtual"] - times["physical"]) / times["physical"] * 100
        rows.append(
            [
                query_id,
                f"{times['virtual']:.4f}",
                f"{times['physical']:.4f}",
                f"{overhead:+.1f}%",
            ]
        )
    write_report(
        "tableB_virtual_overhead",
        format_table(
            ["Query", "Virtual (s)", "Physical (s)", "virtual overhead"],
            rows,
            title=f"Table 5 (Appendix B) reproduction -- {N_TWEETS} tweets",
        ),
    )
    yield


def _timed(fn) -> float:
    import time

    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_results_identical(systems):
    for sql in APPENDIX_B_QUERIES.values():
        virtual_rows = systems["virtual"].query(sql).rows
        physical_rows = systems["physical"].query(sql).rows
        if "ORDER BY" not in sql:
            virtual_rows = sorted(map(repr, virtual_rows))
            physical_rows = sorted(map(repr, physical_rows))
        assert len(virtual_rows) == len(physical_rows)


@pytest.mark.parametrize("query_id", list(APPENDIX_B_QUERIES))
@pytest.mark.parametrize("condition", ["virtual", "physical"])
def test_tableB_query(benchmark, systems, query_id, condition):
    sdb = systems[condition]
    sql = APPENDIX_B_QUERIES[query_id]
    benchmark.group = f"tableB-{query_id}"
    benchmark.pedantic(lambda: sdb.query(sql), rounds=3, iterations=1, warmup_rounds=1)
