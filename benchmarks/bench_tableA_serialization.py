"""Paper Appendix A / Table 4: serialization format comparison.

Sinew's custom format vs. the Protocol-Buffers-like and Avro-like
serializers over NoBench objects, on the paper's five tasks: serialize,
deserialize, extract 1 key, extract 10 keys, and encoded size (plus the
original JSON size for reference).

Expected shape: Sinew fastest on every task; Protocol Buffers slightly
smaller on size (varint bit-packing); Avro far behind on everything and
*larger than the original* (explicit NULLs for its 1000-key union schema).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.baselines import AvroLikeSerializer, ProtobufLikeSerializer, RecordSchema
from repro.core import serializer
from repro.core.catalog import SinewCatalog
from repro.core.extractors import ReservoirExtractor
from repro.core.loader import SinewLoader
from repro.harness import format_table
from repro.nobench import NoBenchGenerator
from repro.rdbms.database import Database

from conftest import write_report

N_OBJECTS = max(400, int(4000 * float(os.environ.get("REPRO_SCALE", "1.0"))))

#: 1 dense + 1 nested + some sparse keys: the 10-key extraction mix.
TEN_KEYS = [
    "str1", "str2", "num", "bool", "dyn1", "dyn2", "thousandth",
    "sparse_110", "sparse_440", "sparse_889",
]
ONE_KEY = "num"


class SinewFormatAdapter:
    """Sinew's reservoir format behind the common comparison interface."""

    name = "Sinew"

    def __init__(self, documents):
        self.catalog = SinewCatalog()
        self.loader = SinewLoader(Database("tableA"), self.catalog)
        self.extractor = ReservoirExtractor(self.catalog)
        # register the attribute dictionary up front (the loader would)
        for document in documents:
            self.loader.serialize_document(document)

    def serialize(self, document):
        return self.loader.serialize_document(document)

    def deserialize(self, data):
        return self.extractor.to_dict(data)

    def extract(self, data, key):
        return self.extractor.extract_any(data, key)

    def extract_many(self, data, keys):
        # resolve keys to attribute ids once (as a query binding would),
        # then use the format's amortised multi-key extraction
        wanted = self._resolve(tuple(keys))
        return serializer.extract_many(data, wanted)

    def _resolve(self, keys):
        if not hasattr(self, "_resolved"):
            self._resolved = {}
        if keys not in self._resolved:
            wanted = []
            for key in keys:
                attributes = self.catalog.attributes_named(key)
                if attributes:
                    wanted.append((attributes[0].attr_id, attributes[0].key_type))
                else:
                    wanted.append((0, None))
            self._resolved[keys] = wanted
        return self._resolved[keys]


class SchemaFormatAdapter:
    """Avro-like / Protobuf-like behind the same interface."""

    def __init__(self, name, serializer):
        self.name = name
        self.serializer = serializer

    def serialize(self, document):
        return self.serializer.serialize(document)

    def deserialize(self, data):
        return self.serializer.deserialize(data)

    def extract(self, data, key):
        return self.serializer.extract(data, key)

    def extract_many(self, data, keys):
        return self.serializer.extract_many(data, keys)


@pytest.fixture(scope="module")
def corpus():
    return list(NoBenchGenerator(N_OBJECTS).documents())


@pytest.fixture(scope="module")
def formats(corpus):
    schema = RecordSchema.from_documents(corpus)
    return [
        SinewFormatAdapter(corpus),
        SchemaFormatAdapter("Protocol Buffers", ProtobufLikeSerializer(schema)),
        SchemaFormatAdapter("Avro", AvroLikeSerializer(schema)),
    ]


def timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@pytest.fixture(scope="module", autouse=True)
def report(corpus, formats):
    rows = []
    for adapter in formats:
        encoded = [adapter.serialize(doc) for doc in corpus]
        serialize_s = timed(lambda: [adapter.serialize(doc) for doc in corpus])
        deserialize_s = timed(lambda: [adapter.deserialize(data) for data in encoded])
        extract1_s = timed(lambda: [adapter.extract(data, ONE_KEY) for data in encoded])
        extract10_s = timed(
            lambda: [adapter.extract_many(data, TEN_KEYS) for data in encoded]
        )
        size_mb = sum(len(data) for data in encoded) / 1e6
        rows.append(
            [
                adapter.name,
                f"{serialize_s:.3f}",
                f"{deserialize_s:.3f}",
                f"{extract1_s:.3f}",
                f"{extract10_s:.3f}",
                f"{size_mb:.3f}",
            ]
        )
    original_mb = sum(
        len(json.dumps(doc, separators=(",", ":")).encode()) for doc in corpus
    ) / 1e6
    rows.append(["Original (JSON)", "-", "-", "-", "-", f"{original_mb:.3f}"])
    write_report(
        "tableA_serialization",
        format_table(
            [
                "Format",
                "Serialize (s)",
                "Deserialize (s)",
                "Extract 1 key (s)",
                "Extract 10 keys (s)",
                "Size (MB)",
            ],
            rows,
            title=f"Table 4 (Appendix A) reproduction -- {N_OBJECTS} NoBench objects",
        ),
    )
    yield


def test_size_ordering(corpus, formats):
    """Protobuf smallest, Sinew close, Avro bigger than the original."""
    sizes = {
        adapter.name: sum(len(adapter.serialize(doc)) for doc in corpus)
        for adapter in formats
    }
    original = sum(
        len(json.dumps(doc, separators=(",", ":")).encode()) for doc in corpus
    )
    assert sizes["Protocol Buffers"] < sizes["Sinew"] < sizes["Avro"]
    assert sizes["Avro"] > original


@pytest.mark.parametrize("task", ["serialize", "deserialize", "extract1", "extract10"])
@pytest.mark.parametrize("format_name", ["Sinew", "Protocol Buffers", "Avro"])
def test_serialization_task(benchmark, corpus, formats, task, format_name):
    adapter = next(f for f in formats if f.name == format_name)
    sample = corpus[: max(50, len(corpus) // 20)]
    encoded = [adapter.serialize(doc) for doc in sample]
    operations = {
        "serialize": lambda: [adapter.serialize(doc) for doc in sample],
        "deserialize": lambda: [adapter.deserialize(data) for data in encoded],
        "extract1": lambda: [adapter.extract(data, ONE_KEY) for data in encoded],
        "extract10": lambda: [
            adapter.extract_many(data, TEN_KEYS) for data in encoded
        ],
    }
    benchmark.group = f"tableA-{task}"
    benchmark.pedantic(operations[task], rounds=3, iterations=1)
