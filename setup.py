"""Setup shim: lets ``pip install -e .`` work on environments without the
``wheel`` package (offline CI) via ``python setup.py develop``."""

from setuptools import setup

setup()
