#!/usr/bin/env python3
"""Quickstart: SQL over schemaless documents, no schema ever declared.

This walks the paper's running example (Figures 2-3, section 3.2.2): load
heterogeneous web-request documents, query them with plain SQL, watch the
hybrid physical schema evolve, and keep querying while the column
materializer works in the background.

Run:  python examples/quickstart.py
"""

from repro.core import SinewDB


def main() -> None:
    sdb = SinewDB("quickstart")
    sdb.create_collection("webrequests")

    # -- 1. load documents with different shapes: no CREATE TABLE, no schema
    sdb.load(
        "webrequests",
        [
            {
                "url": "www.sample-site.com",
                "hits": 22,
                "avg_site_visit": 128.5,
                "country": "pl",
            },
            {
                "url": "www.sample-site2.com",
                "hits": 15,
                "date": "8/19/13",
                "ip": "123.45.67.89",
                "owner": "John P. Smith",
            },
        ],
    )

    # -- 2. standard SQL against the universal relation
    result = sdb.query("SELECT url FROM webrequests WHERE hits > 20")
    print("sites with more than 20 hits:", result.rows)

    result = sdb.query("SELECT url, owner FROM webrequests WHERE ip IS NOT NULL")
    print("requests with an ip:", result.rows)

    # keys a document lacks are simply NULL
    result = sdb.query("SELECT url, country FROM webrequests")
    print("countries (sparse):", result.rows)

    # -- 3. the logical schema grew from the data alone
    print("\nlogical schema (key, type, storage):")
    for key, sql_type, storage in sdb.logical_schema("webrequests"):
        print(f"  {key:<16} {sql_type.value:<8} {storage}")

    # -- 4. what the RDBMS actually executes: the rewritten query
    print("\nEXPLAIN SELECT url FROM webrequests WHERE hits > 20:")
    print(sdb.explain("SELECT url FROM webrequests WHERE hits > 20"))

    # -- 5. load more data: new keys appear with zero DDL
    sdb.load(
        "webrequests",
        [{"url": f"site-{i}.example", "hits": 1000 + i, "region": "eu"} for i in range(500)],
    )
    print(
        "\nafter loading 500 more docs:",
        sdb.query("SELECT count(*) FROM webrequests").scalar(),
        "rows;",
        "region now queryable:",
        sdb.query("SELECT count(*) FROM webrequests WHERE region = 'eu'").scalar(),
    )

    # -- 6. let the schema analyzer + column materializer settle the
    #       hybrid physical layout (normally a background process)
    report = sdb.analyze_schema("webrequests")
    print("\nanalyzer decided to materialize:", report.materialized_keys())
    move = sdb.run_materializer("webrequests")
    print(f"materializer moved {move.rows_moved} values into physical columns")

    print("\nstorage after settling:")
    for key, sql_type, storage in sdb.logical_schema("webrequests"):
        print(f"  {key:<16} {sql_type.value:<8} {storage}")

    # -- 7. identical SQL, now running against physical columns
    print("\nsame query, new plan:")
    print(sdb.explain("SELECT url FROM webrequests WHERE hits > 20"))

    # -- 8. SELECT * reconstructs complete documents
    result = sdb.query("SELECT * FROM webrequests WHERE owner IS NOT NULL")
    print("\nfull document:", result.rows[0][0])

    # -- 9. updates work on any logical column, physical or virtual
    sdb.execute("UPDATE webrequests SET owner = 'New Owner' WHERE hits = 22")
    print(
        "owner after update:",
        sdb.query("SELECT owner FROM webrequests WHERE hits = 22").rows,
    )


if __name__ == "__main__":
    main()
