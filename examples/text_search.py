#!/usr/bin/env python3
"""Full-text search over semi-structured AND unstructured data (paper
section 4.3).

A support-ticket system: tickets are JSON documents with structured
fields, free-text subjects, and tag arrays.  The inverted text index lets
SQL WHERE clauses use ``matches(keys, query)`` -- term search, field
faceting, prefix and fuzzy matching -- next to ordinary relational
predicates, and completely unstructured log lines live alongside via the
generic text field.

Run:  python examples/text_search.py
"""

from repro.core import SinewConfig, SinewDB

TICKETS = [
    {
        "id": 1,
        "subject": "Database connection timeout during peak hours",
        "severity": "high",
        "tags": ["database", "timeout"],
        "reporter": {"name": "ada", "team": "platform"},
    },
    {
        "id": 2,
        "subject": "Dashboard rendering glitch in dark mode",
        "severity": "low",
        "tags": ["frontend", "ui"],
        "reporter": {"name": "brian", "team": "web"},
    },
    {
        "id": 3,
        "subject": "Timeout connecting to the payments database replica",
        "severity": "critical",
        "tags": ["database", "payments"],
        "reporter": {"name": "carol", "team": "payments"},
    },
    {
        "id": 4,
        "subject": "Add dark theme to the mobile dashboard",
        "severity": "low",
        "tags": ["mobile", "feature-request"],
        "reporter": {"name": "ada", "team": "platform"},
    },
    {
        "id": 5,
        "subject": "Payments databse migration failing",  # note the typo!
        "severity": "high",
        "tags": ["payments", "migration"],
        "reporter": {"name": "dmitri", "team": "payments"},
    },
]


def main() -> None:
    sdb = SinewDB("tickets", SinewConfig(enable_text_index=True))
    sdb.create_collection("tickets")
    sdb.load("tickets", TICKETS)

    print("tickets mentioning 'timeout' anywhere:")
    result = sdb.query("SELECT id, severity FROM tickets WHERE matches('*', 'timeout')")
    print(" ", sorted(result.rows))

    print("\n'database' restricted to the subject field:")
    result = sdb.query(
        "SELECT id FROM tickets WHERE matches('subject', 'database')"
    )
    print(" ", sorted(result.column(0)))

    print("\ncombined with relational predicates (AND severity):")
    result = sdb.query(
        "SELECT id FROM tickets "
        "WHERE matches('subject', 'database') AND severity = 'critical'"
    )
    print(" ", result.column(0))

    print("\nconjunction of terms ('dark dashboard'):")
    result = sdb.query("SELECT id FROM tickets WHERE matches('*', 'dark dashboard')")
    print(" ", sorted(result.column(0)))

    print("\nprefix search ('time*') over subjects:")
    result = sdb.query("SELECT id FROM tickets WHERE matches('subject', 'time*')")
    print(" ", sorted(result.column(0)))

    print("\nfuzzy search finds the 'databse' typo ('database~'):")
    result = sdb.query("SELECT id FROM tickets WHERE matches('subject', 'database~')")
    print(" ", sorted(result.column(0)))

    print("\narray tags are indexed too (tags:payments):")
    result = sdb.query("SELECT id FROM tickets WHERE matches('tags', 'payments')")
    print(" ", sorted(result.column(0)))

    print("\nfaceted by a nested field (reporter.team:payments):")
    result = sdb.query(
        "SELECT id FROM tickets WHERE matches('reporter.team', 'payments')"
    )
    print(" ", sorted(result.column(0)))

    # -- completely unstructured data alongside (section 4.3's last point)
    sdb.text_index.index_text(
        900, "2014-06-22 14:03:11 ERROR payments-db: replication lag exceeded"
    )
    print("\nunstructured log line findable through the same index:")
    print(" ", sorted(sdb.text_index.matches("*", "replication lag")))

    # -- the index also answers numeric ranges on virtual columns
    print("\nindex-side numeric range 2 <= id <= 4 (row ids of the matches):")
    print(" ", sorted(sdb.text_index.search_range("id", 2, 4)))


if __name__ == "__main__":
    main()
