#!/usr/bin/env python3
"""Twitter firehose analytics -- the paper's motivating workload.

Tweets are deeply nested, wildly sparse (150+ optional attributes when
flattened), and arrive next to ``delete`` records with a completely
different shape.  Sinew puts them all behind standard SQL: the queries
below are Table 1 of the paper, plus a look at how materializing the hot
attributes changes the optimizer's plans (Table 2).

Run:  python examples/twitter_analytics.py
"""

import time

from repro.core import SinewDB
from repro.rdbms.types import type_from_name
from repro.workloads import (
    TABLE1_QUERIES,
    TABLE2_PHYSICAL_ATTRIBUTES,
    TwitterGenerator,
)

N_TWEETS = 5000


def main() -> None:
    generator = TwitterGenerator(N_TWEETS)
    sdb = SinewDB("twitter")
    sdb.create_collection("tweets")
    sdb.create_collection("deletes")

    print(f"loading {N_TWEETS} tweets and {N_TWEETS // 3} delete records...")
    sdb.load("tweets", generator.tweets())
    sdb.load("deletes", generator.deletes(N_TWEETS // 3))
    print(
        "flattened logical columns on tweets:",
        len(sdb.logical_schema("tweets")),
    )

    # -- ad-hoc analytics straight away, fully virtual ------------------
    print("\ntweets per language (top 5):")
    result = sdb.query(
        'SELECT "user.lang", count(*) AS n FROM tweets '
        'GROUP BY "user.lang" ORDER BY n DESC LIMIT 5'
    )
    for lang, count in result.rows:
        print(f"  {lang:>4}: {count}")

    print("\nmost-followed verified users:")
    result = sdb.query(
        'SELECT DISTINCT "user.screen_name", "user.followers_count" '
        'FROM tweets WHERE "user.verified" = true '
        'ORDER BY "user.followers_count" DESC LIMIT 3'
    )
    for name, followers in result.rows:
        print(f"  {name}: {followers} followers")

    # -- the Table 1 queries --------------------------------------------
    print("\nTable 1 queries, all-virtual timings:")
    virtual_times = {}
    for query_id, sql in TABLE1_QUERIES.items():
        start = time.perf_counter()
        rows = len(sdb.query(sql))
        virtual_times[query_id] = time.perf_counter() - start
        print(f"  {query_id}: {rows} rows in {virtual_times[query_id]:.3f}s")

    # -- materialize the hot attributes and compare ----------------------
    print("\nmaterializing the Table 2 attribute set...")
    for key, type_name in TABLE2_PHYSICAL_ATTRIBUTES:
        table = "deletes" if key.startswith("delete.") else "tweets"
        sdb.materialize(table, key, type_from_name(type_name))
    moved = sdb.run_materializer("tweets").rows_moved
    moved += sdb.run_materializer("deletes").rows_moved
    sdb.analyze()
    print(f"  {moved} values moved to physical columns")

    print("\nTable 1 queries, hybrid-schema timings:")
    for query_id, sql in TABLE1_QUERIES.items():
        start = time.perf_counter()
        rows = len(sdb.query(sql))
        elapsed = time.perf_counter() - start
        speedup = virtual_times[query_id] / elapsed if elapsed else float("inf")
        print(f"  {query_id}: {rows} rows in {elapsed:.3f}s  ({speedup:.1f}x)")

    # -- the plans changed, not just the constants -----------------------
    print("\nT1 plan with statistics on the physical column:")
    print(sdb.explain(TABLE1_QUERIES["T1"]))


if __name__ == "__main__":
    main()
