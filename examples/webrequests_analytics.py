#!/usr/bin/env python3
"""Mixed analytics: schemaless documents joined with plain relational data.

The paper stresses that Sinew "interact[s] transparently with structured
data already stored in the RDBMS".  Here a schemaless web-request stream
is joined against an ordinary relational dimension table living in the
same database, and the whole session is plain SQL.

Run:  python examples/webrequests_analytics.py
"""

import random

from repro.core import SinewDB

COUNTRIES = ["pl", "us", "de", "jp", "br"]
REGIONS = [("pl", "EMEA"), ("us", "AMER"), ("de", "EMEA"), ("jp", "APAC"), ("br", "AMER")]


def requests(n: int):
    rng = random.Random(7)
    for index in range(n):
        document = {
            "url": f"www.site-{index % 40}.example",
            "hits": rng.randrange(1, 500),
            "country": rng.choice(COUNTRIES),
        }
        if rng.random() < 0.3:
            document["referrer"] = f"www.search-{rng.randrange(5)}.example"
        if rng.random() < 0.1:
            document["session"] = {
                "duration_s": rng.randrange(5, 600),
                "pages": rng.randrange(1, 20),
            }
        yield document


def main() -> None:
    sdb = SinewDB("weblog")

    # schemaless side: the request stream
    sdb.create_collection("webrequests")
    sdb.load("webrequests", requests(3000))
    sdb.settle("webrequests")

    # plain relational side: an ordinary table with DDL, in the same DB
    sdb.db.execute("CREATE TABLE regions (country text, region text)")
    for country, region in REGIONS:
        sdb.db.execute(f"INSERT INTO regions VALUES ('{country}', '{region}')")
    sdb.db.analyze("regions")

    print("hits by region (documents joined with a relational table):")
    result = sdb.query(
        "SELECT r.region, sum(w.hits) AS total "
        "FROM webrequests w, regions r "
        "WHERE w.country = r.country "
        "GROUP BY r.region ORDER BY total DESC"
    )
    for region, total in result.rows:
        print(f"  {region}: {total}")

    print("\ntop referred sites (sparse key, ~30% of documents):")
    result = sdb.query(
        "SELECT url, count(*) AS n FROM webrequests "
        "WHERE referrer IS NOT NULL GROUP BY url ORDER BY n DESC LIMIT 3"
    )
    for url, count in result.rows:
        print(f"  {url}: {count} referred requests")

    print("\nlong sessions (a nested key present in ~10% of documents):")
    result = sdb.query(
        'SELECT count(*), avg("session.pages") FROM webrequests '
        'WHERE "session.duration_s" > 300'
    )
    count, avg_pages = result.rows[0]
    print(f"  {count} sessions over 5 minutes, {avg_pages:.1f} pages on average")

    print("\nwhat the optimizer sees for the join:")
    print(
        sdb.explain(
            "SELECT r.region, sum(w.hits) FROM webrequests w, regions r "
            "WHERE w.country = r.country GROUP BY r.region"
        )
    )


if __name__ == "__main__":
    main()
