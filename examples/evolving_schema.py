#!/usr/bin/env python3
"""An evolving product catalog: schema drift without migrations.

The scenario from the paper's introduction: an application whose data
model changes faster than anyone wants to run ALTER TABLE.  Three
"generations" of product documents arrive over time, each with new keys
and one key that changes type.  Sinew absorbs all of it:

* new keys become queryable the moment they are loaded;
* the multi-typed key is handled per type (numeric predicates see the
  numbers, text predicates see the strings -- no Q7-style aborts);
* the schema analyzer notices when a once-hot attribute goes cold and
  dematerializes it, and queries keep working mid-move thanks to the
  dirty-column COALESCE rewrite.

Run:  python examples/evolving_schema.py
"""

from repro.core import SinewDB
from repro.rdbms.types import SqlType


def generation_one(n: int):
    """v1: bare-bones products with integer prices."""
    for index in range(n):
        yield {"sku": f"SKU-{index:05d}", "price": 10 + index, "stock": index % 40}


def generation_two(n: int, offset: int):
    """v2 adds categories, ratings, and nested supplier info."""
    for index in range(offset, offset + n):
        yield {
            "sku": f"SKU-{index:05d}",
            "price": f"EUR {10 + index % 90}.00",  # v2 switched to strings!
            "category": ["tools", "garden", "kitchen"][index % 3],
            "rating": round(1 + (index % 40) / 10, 1),
            "supplier": {"name": f"supplier-{index % 7}", "country": "de"},
        }


def generation_three(n: int, offset: int):
    """v3: 'price' becomes a formatted string (a type change!), stock is
    retired, and per-market price objects appear."""
    for index in range(offset, offset + n):
        yield {
            "sku": f"SKU-{index:05d}",
            "price": f"EUR {10 + index % 90}.00",
            "category": ["tools", "garden", "kitchen", "outdoor"][index % 4],
            "markets": {"us": 12 + index % 90, "eu": 10 + index % 90},
        }


def show_schema(sdb: SinewDB) -> None:
    for key, sql_type, storage in sdb.logical_schema("products"):
        print(f"  {key:<18} {sql_type.value:<8} {storage}")


def main() -> None:
    sdb = SinewDB("catalog")
    sdb.create_collection("products")

    print("=== generation 1 arrives ===")
    sdb.load("products", generation_one(600))
    sdb.settle("products")
    show_schema(sdb)
    print(
        "cheap items in stock:",
        sdb.query(
            "SELECT count(*) FROM products WHERE price < 20 AND stock > 0"
        ).scalar(),
    )

    print("\n=== generation 2 arrives (new keys, and price becomes a string!) ===")
    sdb.load("products", generation_two(600, offset=600))
    print(
        "avg rating per category:",
        sdb.query(
            "SELECT category, avg(rating) FROM products "
            "WHERE rating IS NOT NULL GROUP BY category"
        ).rows,
    )
    print(
        "german-supplied products:",
        sdb.query(
            "SELECT count(*) FROM products WHERE \"supplier.country\" = 'de'"
        ).scalar(),
    )

    print("\n=== generation 3 arrives ===")
    sdb.load("products", generation_three(600, offset=1200))
    # numeric predicate: sees only the numeric price generation
    numeric = sdb.query("SELECT count(*) FROM products WHERE price < 20").scalar()
    # text predicate: sees only the string prices
    text = sdb.query(
        "SELECT count(*) FROM products WHERE price LIKE 'EUR %'"
    ).scalar()
    print(f"numeric prices < 20: {numeric};  string prices: {text}")
    print(
        "projection downcasts the multi-typed key:",
        sdb.query("SELECT price FROM products LIMIT 1").rows
        + sdb.query("SELECT price FROM products WHERE sku = 'SKU-01400'").rows,
    )

    print("\n=== the analyzer reacts to the drift ===")
    report = sdb.analyze_schema("products")
    print("materialize:", report.materialized_keys())
    print("dematerialize:", report.dematerialized_keys())

    # run the materializer INCREMENTALLY and query mid-move
    print("\nquerying while the materializer is mid-move:")
    steps = 0
    while sdb.materializer.pending("products"):
        sdb.materializer_step("products", max_rows=400)
        steps += 1
        count = sdb.query("SELECT count(*) FROM products WHERE sku LIKE 'SKU-0%'").scalar()
        assert count == 1800, count
    print(f"  {steps} incremental steps, answers stayed correct throughout")

    print("\nfinal physical layout:")
    show_schema(sdb)


if __name__ == "__main__":
    main()
